package transport

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestMessageClone(t *testing.T) {
	m := Message{
		Kind:    "k",
		Vectors: [][]float64{{1, 2}},
		Scalars: map[string]float64{"loss": 3},
	}
	c := m.Clone()
	c.Vectors[0][0] = 99
	c.Scalars["loss"] = 99
	if m.Vectors[0][0] != 1 || m.Scalars["loss"] != 3 {
		t.Error("Clone aliases the original payload")
	}
}

func TestMemorySendRecv(t *testing.T) {
	net := NewMemoryNetwork()
	defer net.Close()
	a, err := net.Endpoint("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := net.Endpoint("b")
	if err != nil {
		t.Fatal(err)
	}
	want := Message{Kind: "ping", Round: 7, Vectors: [][]float64{{1, 2, 3}}}
	if err := a.Send("b", want); err != nil {
		t.Fatal(err)
	}
	got, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got.From != "a" || got.To != "b" || got.Kind != "ping" || got.Round != 7 {
		t.Errorf("got %+v", got)
	}
	if got.Vectors[0][2] != 3 {
		t.Errorf("payload lost: %v", got.Vectors)
	}
}

func TestMemoryUnknownNode(t *testing.T) {
	net := NewMemoryNetwork()
	defer net.Close()
	a, err := net.Endpoint("a")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Send("ghost", Message{}); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("err = %v, want ErrUnknownNode", err)
	}
}

func TestMemoryRecvTimeout(t *testing.T) {
	net := NewMemoryNetwork()
	defer net.Close()
	a, err := net.Endpoint("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.RecvTimeout(20 * time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Errorf("err = %v, want ErrTimeout", err)
	}
}

func TestMemoryCloseUnblocksReceivers(t *testing.T) {
	net := NewMemoryNetwork()
	a, err := net.Endpoint("a")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := a.Recv()
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	if err := net.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Errorf("err = %v, want ErrClosed", err)
		}
	case <-time.After(time.Second):
		t.Fatal("Recv did not unblock on Close")
	}
}

func TestMemoryDropInjection(t *testing.T) {
	net := NewMemoryNetwork(WithDropRate(1.0, 1)) // drop everything
	defer net.Close()
	a, err := net.Endpoint("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := net.Endpoint("b")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Send("b", Message{Kind: "x"}); err != nil {
		t.Fatalf("drop should look like success to the sender: %v", err)
	}
	if _, err := b.RecvTimeout(30 * time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Errorf("dropped message was delivered: %v", err)
	}
}

func TestMemoryDelayInjectionStillDelivers(t *testing.T) {
	net := NewMemoryNetwork(WithDelay(20*time.Millisecond, 3))
	defer net.Close()
	a, err := net.Endpoint("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := net.Endpoint("b")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := a.Send("b", Message{Kind: "x", Round: i}); err != nil {
			t.Fatal(err)
		}
	}
	seen := 0
	for seen < 10 {
		if _, err := b.RecvTimeout(time.Second); err != nil {
			t.Fatalf("delayed message lost after %d: %v", seen, err)
		}
		seen++
	}
}

func TestMemoryConcurrentSenders(t *testing.T) {
	net := NewMemoryNetwork()
	defer net.Close()
	sink, err := net.Endpoint("sink")
	if err != nil {
		t.Fatal(err)
	}
	const senders, per = 8, 5
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		ep, err := net.Endpoint(fmt.Sprintf("s%d", s))
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := ep.Send("sink", Message{Kind: "m"}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	for i := 0; i < senders*per; i++ {
		if _, err := sink.RecvTimeout(time.Second); err != nil {
			t.Fatalf("missing message %d: %v", i, err)
		}
	}
}

func TestTCPSendRecv(t *testing.T) {
	net := NewTCPNetwork()
	defer net.Close()
	a, err := net.Listen("a")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := net.Listen("b")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	want := Message{Kind: "ping", Round: 3, Vectors: [][]float64{{4, 5}},
		Scalars: map[string]float64{"loss": 0.5}}
	if err := a.Send("b", want); err != nil {
		t.Fatal(err)
	}
	got, err := b.RecvTimeout(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got.From != "a" || got.Kind != "ping" || got.Vectors[0][1] != 5 || got.Scalars["loss"] != 0.5 {
		t.Errorf("got %+v", got)
	}
}

func TestTCPBidirectional(t *testing.T) {
	net := NewTCPNetwork()
	defer net.Close()
	a, err := net.Listen("a")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := net.Listen("b")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	for i := 0; i < 20; i++ {
		if err := a.Send("b", Message{Kind: "req", Round: i}); err != nil {
			t.Fatal(err)
		}
		got, err := b.RecvTimeout(2 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if err := b.Send("a", Message{Kind: "resp", Round: got.Round}); err != nil {
			t.Fatal(err)
		}
		resp, err := a.RecvTimeout(2 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Round != i {
			t.Fatalf("round %d echoed as %d", i, resp.Round)
		}
	}
}

func TestTCPUnknownNode(t *testing.T) {
	net := NewTCPNetwork()
	defer net.Close()
	a, err := net.Listen("a")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := a.Send("ghost", Message{}); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("err = %v, want ErrUnknownNode", err)
	}
}

func TestTCPDuplicateListen(t *testing.T) {
	net := NewTCPNetwork()
	defer net.Close()
	a, err := net.Listen("a")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if _, err := net.Listen("a"); err == nil {
		t.Error("duplicate Listen accepted")
	}
}

func TestTCPCloseUnblocksRecv(t *testing.T) {
	net := NewTCPNetwork()
	defer net.Close()
	a, err := net.Listen("a")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := a.Recv()
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Errorf("err = %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv did not unblock on Close")
	}
}

func TestTCPLargePayload(t *testing.T) {
	net := NewTCPNetwork()
	defer net.Close()
	a, err := net.Listen("a")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := net.Listen("b")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	big := make([]float64, 200_000)
	for i := range big {
		big[i] = float64(i)
	}
	if err := a.Send("b", Message{Kind: "big", Vectors: [][]float64{big}}); err != nil {
		t.Fatal(err)
	}
	got, err := b.RecvTimeout(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Vectors[0]) != len(big) || got.Vectors[0][199_999] != 199_999 {
		t.Error("large payload corrupted")
	}
}

func TestTCPRecvTimeoutExpires(t *testing.T) {
	net := NewTCPNetwork()
	defer net.Close()
	a, err := net.Listen("a")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	start := time.Now()
	_, err = a.RecvTimeout(50 * time.Millisecond)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond {
		t.Errorf("timeout fired after %v, before the deadline", elapsed)
	}
}

func TestTCPSendRetriesBrokenConn(t *testing.T) {
	// A send over a connection that died (peer restarted, RST) must redial
	// with a fresh encoder and deliver, not fail on the first broken pipe.
	tn := NewTCPNetwork()
	defer tn.Close()
	a, err := tn.Listen("a")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := tn.Listen("b")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	if err := a.Send("b", Message{Kind: "x", Round: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.RecvTimeout(2 * time.Second); err != nil {
		t.Fatal(err)
	}

	// Sever the cached a→b socket out from under the endpoint: the next
	// Send's Encode fails, which must evict the poisoned encoder and retry.
	ae := a.(*tcpEndpoint)
	ae.connMu.Lock()
	ae.conns["b"].conn.Close()
	ae.connMu.Unlock()

	if err := a.Send("b", Message{Kind: "x", Round: 2}); err != nil {
		t.Fatalf("send after severed conn: %v", err)
	}
	got, err := b.RecvTimeout(2 * time.Second)
	if err != nil {
		t.Fatalf("redialed message lost: %v", err)
	}
	if got.Round != 2 {
		t.Errorf("got round %d, want 2", got.Round)
	}
	if stats := tn.FaultStats(); stats.Retries < 1 {
		t.Errorf("Retries = %d, want >= 1", stats.Retries)
	}
}

func TestTCPSendToClosedPeerAborts(t *testing.T) {
	// With the peer gone for good, Send keeps redialing (it cannot know the
	// outage is permanent) but must abort promptly when the sender itself
	// shuts down instead of hanging for the full dial-retry budget.
	tn := NewTCPNetwork()
	defer tn.Close()
	a, err := tn.Listen("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := tn.Listen("b")
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() { done <- a.Send("b", Message{Kind: "x"}) }()
	time.Sleep(100 * time.Millisecond)
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Errorf("err = %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Send to dead peer did not abort on sender Close")
	}
}

func TestTCPCloseRacesRecv(t *testing.T) {
	// Close concurrent with blocked receivers and in-flight sends must not
	// deadlock, panic, or leak goroutines (the -race build checks the rest).
	tn := NewTCPNetwork()
	defer tn.Close()
	a, err := tn.Listen("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := tn.Listen("b")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			for {
				if _, err := a.Recv(); errors.Is(err, ErrClosed) {
					return
				}
			}
		}()
		go func() {
			defer wg.Done()
			if _, err := a.RecvTimeout(5 * time.Second); err != nil &&
				!errors.Is(err, ErrClosed) && !errors.Is(err, ErrTimeout) {
				t.Errorf("RecvTimeout: %v", err)
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			if err := b.Send("a", Message{Kind: "x", Round: i}); err != nil {
				return
			}
		}
	}()

	a.Close() // races every goroutine above
	// A sender caught mid-redial against the now-dead listener unblocks via
	// its own endpoint's shutdown.
	b.Close()

	finished := make(chan struct{})
	go func() { wg.Wait(); close(finished) }()
	select {
	case <-finished:
	case <-time.After(5 * time.Second):
		t.Fatal("goroutines stuck after Close")
	}
}
