package transport

import (
	"errors"
	"testing"
	"time"
)

// deliveredRounds sends n round-stamped messages a→b over a fresh
// FaultyNetwork built by mk and returns the rounds that arrived.
func deliveredRounds(t *testing.T, mk func() *FaultyNetwork, n int) []int {
	t.Helper()
	net := mk()
	defer net.Close()
	a, err := net.Endpoint("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := net.Endpoint("b")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := a.Send("b", Message{Kind: "x", Round: i}); err != nil {
			t.Fatal(err)
		}
	}
	var got []int
	for {
		msg, err := b.RecvTimeout(50 * time.Millisecond)
		if err != nil {
			break
		}
		got = append(got, msg.Round)
	}
	return got
}

func TestFaultyDropDeterministic(t *testing.T) {
	mk := func() *FaultyNetwork {
		return NewFaultyNetwork(NewMemoryNetwork(), FaultPlan{Seed: 42, DropRate: 0.3})
	}
	first := deliveredRounds(t, mk, 40)
	second := deliveredRounds(t, mk, 40)
	if len(first) == 40 || len(first) == 0 {
		t.Fatalf("drop rate 0.3 delivered %d/40", len(first))
	}
	if len(first) != len(second) {
		t.Fatalf("same seed delivered %d then %d messages", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("same seed, different schedule: %v vs %v", first, second)
		}
	}
	// A different seed must eventually produce a different schedule.
	other := deliveredRounds(t, func() *FaultyNetwork {
		return NewFaultyNetwork(NewMemoryNetwork(), FaultPlan{Seed: 43, DropRate: 0.3})
	}, 40)
	same := len(other) == len(first)
	if same {
		for i := range first {
			if other[i] != first[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical fault schedules")
	}
}

func TestFaultyPerLinkDropOverride(t *testing.T) {
	// Link a→b is lossless, a→c drops everything.
	net := NewFaultyNetwork(NewMemoryNetwork(), FaultPlan{
		Seed:     7,
		DropRate: 0,
		LinkDrop: map[Link]float64{{From: "a", To: "c"}: 1.0},
	})
	defer net.Close()
	a, _ := net.Endpoint("a")
	b, _ := net.Endpoint("b")
	c, _ := net.Endpoint("c")
	for i := 0; i < 5; i++ {
		if err := a.Send("b", Message{Round: i}); err != nil {
			t.Fatal(err)
		}
		if err := a.Send("c", Message{Round: i}); err != nil {
			t.Fatalf("dropped send must look like success: %v", err)
		}
	}
	for i := 0; i < 5; i++ {
		if _, err := b.RecvTimeout(time.Second); err != nil {
			t.Fatalf("lossless link lost message %d: %v", i, err)
		}
	}
	if _, err := c.RecvTimeout(30 * time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Errorf("fully lossy link delivered: %v", err)
	}
	if stats := net.FaultStats(); stats.Dropped != 5 {
		t.Errorf("Dropped = %d, want 5", stats.Dropped)
	}
}

func TestFaultyCrashAtRound(t *testing.T) {
	net := NewFaultyNetwork(NewMemoryNetwork(), FaultPlan{
		Seed:         1,
		CrashAtRound: map[string]int{"a": 3},
	})
	defer net.Close()
	a, _ := net.Endpoint("a")
	b, _ := net.Endpoint("b")

	// Rounds before the crash pass through.
	for i := 0; i < 3; i++ {
		if err := a.Send("b", Message{Round: i}); err != nil {
			t.Fatalf("pre-crash send round %d: %v", i, err)
		}
	}
	// The crash round kills the node: its own sends fail with ErrCrashed...
	if err := a.Send("b", Message{Round: 3}); !errors.Is(err, ErrCrashed) {
		t.Fatalf("send at crash round = %v, want ErrCrashed", err)
	}
	// ...including retroactively for earlier rounds (the process is dead),
	// and its receives fail too.
	if err := a.Send("b", Message{Round: 0}); !errors.Is(err, ErrCrashed) {
		t.Errorf("post-crash send = %v, want ErrCrashed", err)
	}
	if _, err := a.RecvTimeout(20 * time.Millisecond); !errors.Is(err, ErrCrashed) {
		t.Errorf("post-crash recv = %v, want ErrCrashed", err)
	}
	// Messages addressed to the dead node at or past its crash round are
	// black-holed so the sender is not blocked on an unread inbox.
	if err := b.Send("a", Message{Round: 5}); err != nil {
		t.Errorf("send to crashed node should be silently dropped: %v", err)
	}
	for i := 0; i < 3; i++ {
		if _, err := b.RecvTimeout(time.Second); err != nil {
			t.Fatalf("pre-crash message %d lost: %v", i, err)
		}
	}
	stats := net.FaultStats()
	if len(stats.Crashed) != 1 || stats.Crashed[0] != "a" {
		t.Errorf("Crashed = %v, want [a]", stats.Crashed)
	}
	if stats.Dropped != 1 {
		t.Errorf("Dropped = %d, want 1 (black-holed send to dead node)", stats.Dropped)
	}
}

func TestFaultyRestartAfterRounds(t *testing.T) {
	// "a" crashes at round 3 and is scheduled to come back at round 3+2=5.
	net := NewFaultyNetwork(NewMemoryNetwork(), FaultPlan{
		Seed:               1,
		CrashAtRound:       map[string]int{"a": 3},
		RestartAfterRounds: map[string]int{"a": 2},
	})
	defer net.Close()
	a, _ := net.Endpoint("a")
	b, _ := net.Endpoint("b")

	if !net.RestartPlanned("a") {
		t.Fatal("RestartPlanned(a) = false with RestartAfterRounds set")
	}
	if net.RestartPlanned("b") {
		t.Fatal("RestartPlanned(b) = true for an uncrashed node")
	}

	// The outage behaves exactly like a plain crash...
	if err := a.Send("b", Message{Round: 3}); !errors.Is(err, ErrCrashed) {
		t.Fatalf("send at crash round = %v, want ErrCrashed", err)
	}
	if _, err := a.RecvTimeout(20 * time.Millisecond); !errors.Is(err, ErrCrashed) {
		t.Fatalf("in-outage recv = %v, want ErrCrashed", err)
	}
	// ...and traffic addressed to the node inside the window is black-holed.
	if err := b.Send("a", Message{Round: 4}); err != nil {
		t.Fatalf("in-outage send to crashed node: %v", err)
	}
	if net.Revived("a") {
		t.Fatal("Revived(a) = true inside the outage window")
	}

	// A peer message at the revival round ends the outage and is delivered.
	if err := b.Send("a", Message{Round: 5}); err != nil {
		t.Fatalf("revival-round send: %v", err)
	}
	if !net.Revived("a") {
		t.Fatal("Revived(a) = false after revival-round traffic")
	}
	if msg, err := a.RecvTimeout(time.Second); err != nil || msg.Round != 5 {
		t.Fatalf("revived recv = %v, %v; want round 5", msg, err)
	}
	// The respawned incarnation replays from its checkpoint, so it may send
	// rounds inside (or before) the old outage window — those must go through.
	if err := a.Send("b", Message{Round: 2}); err != nil {
		t.Fatalf("post-revival catch-up send: %v", err)
	}
	if msg, err := b.RecvTimeout(time.Second); err != nil || msg.Round != 2 {
		t.Fatalf("catch-up delivery = %v, %v; want round 2", msg, err)
	}

	stats := net.FaultStats()
	if len(stats.Crashed) != 1 || stats.Crashed[0] != "a" {
		t.Errorf("Crashed = %v, want [a]", stats.Crashed)
	}
	if len(stats.Restarted) != 1 || stats.Restarted[0] != "a" {
		t.Errorf("Restarted = %v, want [a]", stats.Restarted)
	}
	if stats.Dropped != 1 {
		t.Errorf("Dropped = %d, want 1 (the in-outage black-holed send)", stats.Dropped)
	}
}

func TestFaultyDelayStillDelivers(t *testing.T) {
	net := NewFaultyNetwork(NewMemoryNetwork(), FaultPlan{Seed: 5, MaxDelay: 5 * time.Millisecond})
	defer net.Close()
	a, _ := net.Endpoint("a")
	b, _ := net.Endpoint("b")
	for i := 0; i < 10; i++ {
		if err := a.Send("b", Message{Round: i}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		if _, err := b.RecvTimeout(time.Second); err != nil {
			t.Fatalf("delayed message %d lost: %v", i, err)
		}
	}
	if stats := net.FaultStats(); stats.Delayed != 10 {
		t.Errorf("Delayed = %d, want 10", stats.Delayed)
	}
}

func TestFaultyOverTCP(t *testing.T) {
	// The wrapper must compose over real sockets, not just the memory hub.
	net := NewFaultyNetwork(NewTCPNetwork(), FaultPlan{
		Seed:     3,
		LinkDrop: map[Link]float64{{From: "a", To: "b"}: 1.0},
	})
	defer net.Close()
	a, err := net.Endpoint("a")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := net.Endpoint("b")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := a.Send("b", Message{Kind: "x"}); err != nil {
		t.Fatalf("dropped TCP send must look like success: %v", err)
	}
	if _, err := b.RecvTimeout(30 * time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Errorf("dropped TCP message delivered: %v", err)
	}
	if err := b.Send("a", Message{Kind: "y"}); err != nil {
		t.Fatal(err)
	}
	if _, err := a.RecvTimeout(2 * time.Second); err != nil {
		t.Errorf("clean reverse link lost the message: %v", err)
	}
}

func TestMemoryDropDeterministicSchedule(t *testing.T) {
	// The hub's own injection must also follow the seed exactly.
	run := func() []int {
		net := NewMemoryNetwork(WithDropRate(0.4, 99))
		defer net.Close()
		a, _ := net.Endpoint("a")
		b, _ := net.Endpoint("b")
		for i := 0; i < 30; i++ {
			if err := a.Send("b", Message{Round: i}); err != nil {
				t.Fatal(err)
			}
		}
		var got []int
		for {
			msg, err := b.RecvTimeout(30 * time.Millisecond)
			if err != nil {
				break
			}
			got = append(got, msg.Round)
		}
		return got
	}
	first, second := run(), run()
	if len(first) == 0 || len(first) == 30 {
		t.Fatalf("drop rate 0.4 delivered %d/30", len(first))
	}
	if len(first) != len(second) {
		t.Fatalf("delivered %d then %d", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("schedules differ: %v vs %v", first, second)
		}
	}
}
