package transport

import (
	"errors"
	"testing"
	"time"
)

func TestMemoryDuplicateEndpointRejected(t *testing.T) {
	net := NewMemoryNetwork()
	defer net.Close()
	a, err := net.Endpoint("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Endpoint("a"); !errors.Is(err, ErrDuplicateNode) {
		t.Fatalf("second claim of a live ID: want ErrDuplicateNode, got %v", err)
	}
	// Closing the endpoint releases the claim; messages queued in between
	// survive for the successor.
	b, err := net.Endpoint("b")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatalf("double close should stay a no-op: %v", err)
	}
	if err := b.Send("a", Message{Kind: "ping", Round: 1}); err != nil {
		t.Fatal(err)
	}
	a2, err := net.Endpoint("a")
	if err != nil {
		t.Fatalf("re-registering after close should work: %v", err)
	}
	msg, err := a2.RecvTimeout(time.Second)
	if err != nil || msg.Kind != "ping" {
		t.Fatalf("successor should see queued traffic: %v %v", msg, err)
	}
}

func TestTCPDuplicateListenRejected(t *testing.T) {
	net := NewTCPNetwork()
	defer net.Close()
	ep, err := net.Listen("a")
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	if _, err := net.Listen("a"); !errors.Is(err, ErrDuplicateNode) {
		t.Fatalf("duplicate TCP listen: want ErrDuplicateNode, got %v", err)
	}
}

func TestStaticDuplicateBindRejected(t *testing.T) {
	first, err := ListenStatic("n", map[string]string{"n": "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer first.Close()
	// Rebinding the exact address the first endpoint holds must surface the
	// typed duplicate error.
	addr := first.(*tcpEndpoint).ln.Addr().String()
	if _, err := ListenStatic("n", map[string]string{"n": addr}); !errors.Is(err, ErrDuplicateNode) {
		t.Fatalf("duplicate static bind: want ErrDuplicateNode, got %v", err)
	}
}

func TestCountingNetworkTraffic(t *testing.T) {
	net := NewCountingNetwork(NewMemoryNetwork())
	defer net.Close()
	a, err := net.Endpoint("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := net.Endpoint("b")
	if err != nil {
		t.Fatal(err)
	}
	msg := Message{Kind: "report", Round: 3, Vectors: [][]float64{{1, 2, 3}}, Scalars: map[string]float64{"loss": 0.5}}
	if err := a.Send("b", msg); err != nil {
		t.Fatal(err)
	}
	if _, err := b.RecvTimeout(time.Second); err != nil {
		t.Fatal(err)
	}
	msgs, bytes := net.Traffic()
	if msgs != 1 {
		t.Fatalf("messages = %d, want 1", msgs)
	}
	// From "a" + To "b" + Kind "report" + round + 3 floats + "loss"+value.
	want := int64(1 + 1 + 6 + 8 + 24 + 4 + 8)
	if bytes != want {
		t.Fatalf("bytes = %d, want %d", bytes, want)
	}
	// Failed sends are not counted.
	if err := a.Send("nobody", msg); err == nil {
		t.Fatal("send to unknown node should fail")
	}
	if msgs, _ := net.Traffic(); msgs != 1 {
		t.Fatalf("failed send counted: %d", msgs)
	}
}
