// Package nn is a small, pure-Go neural-network substrate with hand-written
// backpropagation over a single flat parameter vector.
//
// It exists because this reproduction needs CNN/VGG/ResNet-style models and
// has no deep-learning ecosystem available (stdlib only). The design keeps
// every layer stateless: Forward and Backward receive the layer's parameter
// block and the saved input activation explicitly, so a single Network can be
// evaluated concurrently with per-goroutine workspaces and gradients can be
// checked against finite differences layer by layer.
package nn

import "hieradmo/internal/rng"

// Shape3 is an activation shape: channels × height × width.
type Shape3 struct {
	C, H, W int
}

// Size returns the flattened element count.
func (s Shape3) Size() int { return s.C * s.H * s.W }

// Layer is one differentiable stage of a feed-forward network.
//
// Forward writes the activation for input in into out. Backward receives the
// same params and in that Forward saw, the loss gradient with respect to the
// layer output (gradOut), and must (a) accumulate the loss gradient with
// respect to the layer parameters into gradParams and (b) overwrite gradIn
// with the loss gradient with respect to the input. Slices are sized by the
// Network; implementations must not retain them.
type Layer interface {
	// Name identifies the layer kind for diagnostics.
	Name() string
	// InShape and OutShape describe the activation geometry.
	InShape() Shape3
	OutShape() Shape3
	// ParamCount is the number of float64 parameters this layer owns.
	ParamCount() int
	// Init writes initial parameter values into params (len ParamCount).
	Init(params []float64, r *rng.RNG)
	// Forward computes out = f(params, in).
	Forward(params, in, out []float64)
	// Backward accumulates into gradParams and overwrites gradIn.
	Backward(params, in, gradOut, gradParams, gradIn []float64)
}
