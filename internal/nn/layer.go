// Package nn is a small, pure-Go neural-network substrate with hand-written
// backpropagation over a single flat parameter vector.
//
// It exists because this reproduction needs CNN/VGG/ResNet-style models and
// has no deep-learning ecosystem available (stdlib only). The design keeps
// every layer stateless: Forward and Backward receive the layer's parameter
// block and the saved input activation explicitly, so a single Network can be
// evaluated concurrently with per-goroutine workspaces and gradients can be
// checked against finite differences layer by layer.
package nn

import "hieradmo/internal/rng"

// Shape3 is an activation shape: channels × height × width.
type Shape3 struct {
	C, H, W int
}

// Size returns the flattened element count.
func (s Shape3) Size() int { return s.C * s.H * s.W }

// Layer is one differentiable stage of a feed-forward network.
//
// Forward writes the activation for input in into out. Backward receives the
// same params and in that Forward saw, the activation out that Forward
// produced, the loss gradient with respect to the layer output (gradOut),
// and must (a) accumulate the loss gradient with respect to the layer
// parameters into gradParams and (b) overwrite gradIn with the loss gradient
// with respect to the input. Backward may clobber gradOut as working storage
// (fused layers gate it in place); the Network never reads a gradient buffer
// after handing it to the layer that consumes it. Slices are sized by the
// Network; implementations must not retain them.
//
// scratch is per-call working storage owned by the calling goroutine's
// workspace. Layers that need it implement ScratchSize() int (see
// scratchLayer); everyone else receives nil. Scratch contents are undefined
// when Forward runs, but the scratch handed to Backward is the region the
// immediately preceding Forward call for the same input left behind,
// untouched in between — Backward may reuse state cached there (im2col
// patch matrices, pooling argmax indices) instead of recomputing it from
// the saved input. Callers that invoke Backward directly must therefore run
// the matching Forward first on the same scratch, which is exactly what
// Network.LossGrad does.
//
// A nil gradIn tells Backward the caller does not need the input gradient
// (the first layer of a network has nothing upstream); the layer must skip
// computing it but still accumulate gradParams.
type Layer interface {
	// Name identifies the layer kind for diagnostics.
	Name() string
	// InShape and OutShape describe the activation geometry.
	InShape() Shape3
	OutShape() Shape3
	// ParamCount is the number of float64 parameters this layer owns.
	ParamCount() int
	// Init writes initial parameter values into params (len ParamCount).
	Init(params []float64, r *rng.RNG)
	// Forward computes out = f(params, in).
	Forward(params, in, out, scratch []float64)
	// Backward accumulates into gradParams and overwrites gradIn.
	Backward(params, in, out, gradOut, gradParams, gradIn, scratch []float64)
}

// scratchLayer is implemented by layers whose kernels need per-call working
// storage (im2col patch buffers, padded planes, recomputed intermediate
// activations). The Network sizes one scratch slice per layer instance in
// every pooled workspace.
type scratchLayer interface {
	// ScratchSize is the float64 count of working storage one Forward or
	// Backward call needs.
	ScratchSize() int
}
