package nn

import "math"

// Loss maps a network output and an integer label to a scalar loss and the
// loss gradient with respect to the output.
type Loss interface {
	// Name identifies the loss for diagnostics.
	Name() string
	// LossGrad returns the scalar loss for (out, label) and writes
	// dLoss/dOut into gradOut. gradOut has the same length as out.
	LossGrad(out []float64, label int, gradOut []float64) float64
}

// SoftmaxCrossEntropy is the standard classification loss: softmax over the
// logits followed by negative log likelihood of the true class. Its gradient
// with respect to the logits is softmax(out) − onehot(label).
type SoftmaxCrossEntropy struct{}

var _ Loss = SoftmaxCrossEntropy{}

// Name implements Loss.
func (SoftmaxCrossEntropy) Name() string { return "softmax-ce" }

// LossGrad implements Loss.
func (SoftmaxCrossEntropy) LossGrad(out []float64, label int, gradOut []float64) float64 {
	// Numerically stable softmax: shift by the max logit.
	maxLogit := out[0]
	for _, v := range out[1:] {
		if v > maxLogit {
			maxLogit = v
		}
	}
	var sum float64
	for i, v := range out {
		e := math.Exp(v - maxLogit)
		gradOut[i] = e
		sum += e
	}
	for i := range gradOut {
		gradOut[i] /= sum
	}
	loss := -math.Log(math.Max(gradOut[label], 1e-300))
	gradOut[label] -= 1
	return loss
}

// MSEOneHot is the mean-squared-error loss against the one-hot encoding of
// the label, as used by the paper's linear-regression classifier:
// loss = ½·Σ (out_i − onehot_i)².
type MSEOneHot struct{}

var _ Loss = MSEOneHot{}

// Name implements Loss.
func (MSEOneHot) Name() string { return "mse-onehot" }

// LossGrad implements Loss.
func (MSEOneHot) LossGrad(out []float64, label int, gradOut []float64) float64 {
	var loss float64
	for i, v := range out {
		target := 0.0
		if i == label {
			target = 1
		}
		d := v - target
		gradOut[i] = d
		loss += 0.5 * d * d
	}
	return loss
}
