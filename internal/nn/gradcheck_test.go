package nn

import (
	"math"
	"testing"

	"hieradmo/internal/rng"
	"hieradmo/internal/tensor"
)

// checkGradients compares the analytic parameter gradient of net at a random
// point against central finite differences. This is the load-bearing
// correctness test for the whole training substrate: if it passes for a
// network containing a given layer, both that layer's parameter gradient and
// its input gradient (exercised by upstream layers) are correct.
func checkGradients(t *testing.T, net *Network, seed uint64, tol float64) {
	t.Helper()
	r := rng.New(seed)
	params := net.Init(r)
	// Perturb params away from the init's zero biases so gradients there are
	// informative too.
	for i := range params {
		params[i] += 0.05 * r.Norm()
	}
	x := make([]float64, net.InputSize())
	for i := range x {
		x[i] = r.Norm()
	}
	label := r.Intn(net.OutputSize())

	grad := tensor.NewVector(net.Dim())
	if _, err := net.LossGrad(params, x, label, grad); err != nil {
		t.Fatalf("LossGrad: %v", err)
	}

	const h = 1e-5
	lossAt := func(p tensor.Vector) float64 {
		out, err := net.Forward(p, x)
		if err != nil {
			t.Fatalf("Forward: %v", err)
		}
		g := make([]float64, len(out))
		return net.Loss().LossGrad(out, label, g)
	}
	// Check every parameter for small nets, a deterministic sample for
	// larger ones.
	stride := 1
	if net.Dim() > 400 {
		stride = net.Dim() / 400
	}
	checked := 0
	for i := 0; i < net.Dim(); i += stride {
		orig := params[i]
		params[i] = orig + h
		lp := lossAt(params)
		params[i] = orig - h
		lm := lossAt(params)
		params[i] = orig
		numeric := (lp - lm) / (2 * h)
		diff := math.Abs(numeric - grad[i])
		scale := math.Max(1, math.Max(math.Abs(numeric), math.Abs(grad[i])))
		if diff/scale > tol {
			t.Errorf("param %d: analytic %.8f vs numeric %.8f (rel %.2e)",
				i, grad[i], numeric, diff/scale)
			if checked++; checked > 5 {
				t.Fatal("too many gradient mismatches")
			}
		}
	}
}

func TestGradDenseMSE(t *testing.T) {
	net, err := Sequential(MSEOneHot{}, NewDense(6, 4))
	if err != nil {
		t.Fatal(err)
	}
	checkGradients(t, net, 1, 1e-5)
}

func TestGradDenseSoftmax(t *testing.T) {
	net, err := Sequential(SoftmaxCrossEntropy{}, NewDense(6, 4))
	if err != nil {
		t.Fatal(err)
	}
	checkGradients(t, net, 2, 1e-5)
}

func TestGradTwoDenseReLU(t *testing.T) {
	net, err := Sequential(SoftmaxCrossEntropy{},
		NewDense(5, 7),
		NewReLU(Shape3{C: 1, H: 1, W: 7}),
		NewDense(7, 3),
	)
	if err != nil {
		t.Fatal(err)
	}
	checkGradients(t, net, 3, 1e-4)
}

func TestGradConv2D(t *testing.T) {
	in := Shape3{C: 2, H: 5, W: 5}
	conv := NewConv2D(in, 3, 3, 1)
	flat := NewFlatten(conv.OutShape())
	net, err := Sequential(SoftmaxCrossEntropy{},
		conv, flat, NewDense(conv.OutShape().Size(), 4),
	)
	if err != nil {
		t.Fatal(err)
	}
	checkGradients(t, net, 4, 1e-4)
}

func TestGradConv2DNoPad(t *testing.T) {
	in := Shape3{C: 1, H: 6, W: 6}
	conv := NewConv2D(in, 2, 3, 0)
	flat := NewFlatten(conv.OutShape())
	net, err := Sequential(MSEOneHot{},
		conv, flat, NewDense(conv.OutShape().Size(), 3),
	)
	if err != nil {
		t.Fatal(err)
	}
	checkGradients(t, net, 5, 1e-4)
}

func TestGradMaxPool(t *testing.T) {
	in := Shape3{C: 2, H: 6, W: 6}
	conv := NewConv2D(in, 2, 3, 1)
	pool := NewMaxPool2D(conv.OutShape())
	flat := NewFlatten(pool.OutShape())
	net, err := Sequential(SoftmaxCrossEntropy{},
		conv, pool, flat, NewDense(pool.OutShape().Size(), 3),
	)
	if err != nil {
		t.Fatal(err)
	}
	checkGradients(t, net, 6, 1e-4)
}

func TestGradMaxPoolOddDims(t *testing.T) {
	in := Shape3{C: 1, H: 5, W: 7}
	pool := NewMaxPool2D(in)
	flat := NewFlatten(pool.OutShape())
	net, err := Sequential(SoftmaxCrossEntropy{},
		NewConv2D(in, 1, 3, 1),
		pool, flat, NewDense(pool.OutShape().Size(), 2),
	)
	if err != nil {
		t.Fatal(err)
	}
	checkGradients(t, net, 7, 1e-4)
}

func TestGradReLUThroughConv(t *testing.T) {
	in := Shape3{C: 1, H: 4, W: 4}
	conv := NewConv2D(in, 2, 3, 1)
	relu := NewReLU(conv.OutShape())
	flat := NewFlatten(relu.OutShape())
	net, err := Sequential(SoftmaxCrossEntropy{},
		conv, relu, flat, NewDense(relu.OutShape().Size(), 3),
	)
	if err != nil {
		t.Fatal(err)
	}
	checkGradients(t, net, 8, 1e-4)
}

func TestGradResidual(t *testing.T) {
	in := Shape3{C: 2, H: 4, W: 4}
	stem := NewConv2D(in, 2, 3, 1)
	res := NewResidual(stem.OutShape())
	flat := NewFlatten(res.OutShape())
	net, err := Sequential(SoftmaxCrossEntropy{},
		stem, res, flat, NewDense(res.OutShape().Size(), 3),
	)
	if err != nil {
		t.Fatal(err)
	}
	checkGradients(t, net, 9, 1e-4)
}

func TestGradDeepStack(t *testing.T) {
	// A miniature of the full CNN architecture.
	in := Shape3{C: 1, H: 8, W: 8}
	conv1 := NewConv2D(in, 4, 3, 1)
	relu1 := NewReLU(conv1.OutShape())
	pool1 := NewMaxPool2D(relu1.OutShape())
	conv2 := NewConv2D(pool1.OutShape(), 6, 3, 1)
	relu2 := NewReLU(conv2.OutShape())
	pool2 := NewMaxPool2D(relu2.OutShape())
	flat := NewFlatten(pool2.OutShape())
	net, err := Sequential(SoftmaxCrossEntropy{},
		conv1, relu1, pool1, conv2, relu2, pool2, flat,
		NewDense(pool2.OutShape().Size(), 5),
	)
	if err != nil {
		t.Fatal(err)
	}
	checkGradients(t, net, 10, 1e-4)
}
