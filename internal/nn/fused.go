package nn

import (
	"math"

	"hieradmo/internal/rng"
)

// convReLU is the fused form of a Conv2D immediately followed by a ReLU.
// Sequential substitutes it automatically (the zoo's conv→relu pairs, and
// Residual's branch internally): one layer slot means one workspace
// activation instead of two, the rectification happens in the cache-warm
// conv output, and Backward gates the incoming gradient in place off the
// saved post-ReLU activation — out > 0 iff the pre-activation was > 0 for
// finite values, so no pre-activation buffer is kept at all. Bitwise
// identical to the unfused pair (asserted in conv_equiv_test.go).
type convReLU struct {
	conv *Conv2D
}

var _ Layer = (*convReLU)(nil)
var _ scratchLayer = (*convReLU)(nil)

// fuseConvReLU returns the fused layer when next is a ReLU consuming conv's
// output, or nil when the pair does not fuse.
func fuseConvReLU(l, next Layer) Layer {
	conv, ok := l.(*Conv2D)
	if !ok {
		return nil
	}
	if _, ok := next.(*ReLU); !ok {
		return nil
	}
	return &convReLU{conv: conv}
}

// Name implements Layer.
func (f *convReLU) Name() string { return "conv2d+relu" }

// InShape implements Layer.
func (f *convReLU) InShape() Shape3 { return f.conv.InShape() }

// OutShape implements Layer.
func (f *convReLU) OutShape() Shape3 { return f.conv.OutShape() }

// ParamCount implements Layer (the ReLU owns no parameters).
func (f *convReLU) ParamCount() int { return f.conv.ParamCount() }

// Init implements Layer, delegating to the convolution so the parameter
// stream is identical to the unfused stack.
func (f *convReLU) Init(params []float64, r *rng.RNG) { f.conv.Init(params, r) }

// ScratchSize implements scratchLayer.
func (f *convReLU) ScratchSize() int { return f.conv.ScratchSize() }

// Forward implements Layer: convolve, then rectify in place. The rectify is
// branchless — the sign of a conv output is data-random, so a compare-and-
// store loop mispredicts about half its branches. Clearing the whole word
// when the sign bit is set maps every negative to +0 and leaves +0 and
// positives untouched, matching the x > 0 branch bit-for-bit on the finite
// values the stack produces.
func (f *convReLU) Forward(params, in, out, scratch []float64) {
	f.conv.Forward(params, in, out, scratch)
	for i, x := range out {
		bits := math.Float64bits(x)
		mask := uint64(int64(bits)>>63) ^ ^uint64(0) // 0 if negative, all-ones otherwise
		out[i] = math.Float64frombits(bits & mask)
	}
}

// Backward implements Layer. The ReLU gate is applied to gradOut in place
// (the Layer contract allows clobbering it), then the convolution backward
// runs unchanged. out is post-ReLU, so each entry is either +0 (gate
// closed) or a positive value (gate open); the branchless mask keeps the
// gradient exactly when out's bits are nonzero. Gated-off entries become
// +0, which the conv backward skips exactly as the unfused path did.
func (f *convReLU) Backward(params, in, out, gradOut, gradParams, gradIn, scratch []float64) {
	for i, x := range out {
		bits := math.Float64bits(x)
		mask := uint64(int64(bits|-bits) >> 63) // all-ones if bits != 0
		gradOut[i] = math.Float64frombits(math.Float64bits(gradOut[i]) & mask)
	}
	f.conv.Backward(params, in, nil, gradOut, gradParams, gradIn, scratch)
}
