package nn

import "hieradmo/internal/rng"

// ReLU is an element-wise rectified linear activation.
type ReLU struct {
	shape Shape3
}

var _ Layer = (*ReLU)(nil)

// NewReLU returns a ReLU over activations of shape sh.
func NewReLU(sh Shape3) *ReLU {
	return &ReLU{shape: sh}
}

// Name implements Layer.
func (l *ReLU) Name() string { return "relu" }

// InShape implements Layer.
func (l *ReLU) InShape() Shape3 { return l.shape }

// OutShape implements Layer.
func (l *ReLU) OutShape() Shape3 { return l.shape }

// ParamCount implements Layer.
func (l *ReLU) ParamCount() int { return 0 }

// Init implements Layer (no parameters).
func (l *ReLU) Init(params []float64, r *rng.RNG) {}

// Forward implements Layer.
func (l *ReLU) Forward(params, in, out, _ []float64) {
	for i, x := range in {
		if x > 0 {
			out[i] = x
		} else {
			out[i] = 0
		}
	}
}

// Backward implements Layer.
func (l *ReLU) Backward(params, in, _, gradOut, gradParams, gradIn, _ []float64) {
	if gradIn == nil {
		return
	}
	for i, x := range in {
		if x > 0 {
			gradIn[i] = gradOut[i]
		} else {
			gradIn[i] = 0
		}
	}
}

// Flatten reinterprets a C×H×W activation as a flat vector. It is a shape
// adapter only; values pass through unchanged.
type Flatten struct {
	in Shape3
}

var _ Layer = (*Flatten)(nil)

// NewFlatten returns a flattening adapter for inputs of shape in.
func NewFlatten(in Shape3) *Flatten {
	return &Flatten{in: in}
}

// Name implements Layer.
func (l *Flatten) Name() string { return "flatten" }

// InShape implements Layer.
func (l *Flatten) InShape() Shape3 { return l.in }

// OutShape implements Layer.
func (l *Flatten) OutShape() Shape3 { return Shape3{C: 1, H: 1, W: l.in.Size()} }

// ParamCount implements Layer.
func (l *Flatten) ParamCount() int { return 0 }

// Init implements Layer (no parameters).
func (l *Flatten) Init(params []float64, r *rng.RNG) {}

// Forward implements Layer.
func (l *Flatten) Forward(params, in, out, _ []float64) { copy(out, in) }

// Backward implements Layer.
func (l *Flatten) Backward(params, in, _, gradOut, gradParams, gradIn, _ []float64) {
	copy(gradIn, gradOut) // copy to a nil gradIn is a no-op
}
