package nn

import "hieradmo/internal/rng"

// MaxPool2D is a 2×2 max pooling layer with stride 2. Odd trailing rows or
// columns are dropped (floor semantics), matching common framework defaults.
type MaxPool2D struct {
	in Shape3
}

var _ Layer = (*MaxPool2D)(nil)

// NewMaxPool2D returns a 2×2/stride-2 max pool over inputs of shape in.
func NewMaxPool2D(in Shape3) *MaxPool2D {
	return &MaxPool2D{in: in}
}

// Name implements Layer.
func (p *MaxPool2D) Name() string { return "maxpool2d" }

// InShape implements Layer.
func (p *MaxPool2D) InShape() Shape3 { return p.in }

// OutShape implements Layer.
func (p *MaxPool2D) OutShape() Shape3 {
	return Shape3{C: p.in.C, H: p.in.H / 2, W: p.in.W / 2}
}

// ParamCount implements Layer.
func (p *MaxPool2D) ParamCount() int { return 0 }

// Init implements Layer (no parameters).
func (p *MaxPool2D) Init(params []float64, r *rng.RNG) {}

// Forward implements Layer.
func (p *MaxPool2D) Forward(params, in, out []float64) {
	outSh := p.OutShape()
	planeIn := p.in.H * p.in.W
	planeOut := outSh.H * outSh.W
	for c := 0; c < p.in.C; c++ {
		inPlane := in[c*planeIn : (c+1)*planeIn]
		outPlane := out[c*planeOut : (c+1)*planeOut]
		for oy := 0; oy < outSh.H; oy++ {
			for ox := 0; ox < outSh.W; ox++ {
				iy, ix := 2*oy, 2*ox
				m := inPlane[iy*p.in.W+ix]
				if v := inPlane[iy*p.in.W+ix+1]; v > m {
					m = v
				}
				if v := inPlane[(iy+1)*p.in.W+ix]; v > m {
					m = v
				}
				if v := inPlane[(iy+1)*p.in.W+ix+1]; v > m {
					m = v
				}
				outPlane[oy*outSh.W+ox] = m
			}
		}
	}
}

// Backward implements Layer. The max positions are recomputed from the saved
// input so the layer stays stateless; ties route the gradient to the first
// maximal element in scan order.
func (p *MaxPool2D) Backward(params, in, gradOut, gradParams, gradIn []float64) {
	outSh := p.OutShape()
	planeIn := p.in.H * p.in.W
	planeOut := outSh.H * outSh.W
	for i := range gradIn {
		gradIn[i] = 0
	}
	for c := 0; c < p.in.C; c++ {
		inPlane := in[c*planeIn : (c+1)*planeIn]
		gInPlane := gradIn[c*planeIn : (c+1)*planeIn]
		gOutPlane := gradOut[c*planeOut : (c+1)*planeOut]
		for oy := 0; oy < outSh.H; oy++ {
			for ox := 0; ox < outSh.W; ox++ {
				iy, ix := 2*oy, 2*ox
				best := iy*p.in.W + ix
				if idx := iy*p.in.W + ix + 1; inPlane[idx] > inPlane[best] {
					best = idx
				}
				if idx := (iy+1)*p.in.W + ix; inPlane[idx] > inPlane[best] {
					best = idx
				}
				if idx := (iy+1)*p.in.W + ix + 1; inPlane[idx] > inPlane[best] {
					best = idx
				}
				gInPlane[best] += gOutPlane[oy*outSh.W+ox]
			}
		}
	}
}
