package nn

import "hieradmo/internal/rng"

// MaxPool2D is a 2×2 max pooling layer with stride 2. Odd trailing rows or
// columns are dropped (floor semantics), matching common framework defaults.
//
// Forward records the argmax position of every window in scratch (one
// float64-encoded plane index per output cell — exact for any realistic
// plane size), so Backward is a pure scatter with no recomputation. Ties
// route the gradient to the first maximal element in scan order, decided
// once in Forward.
type MaxPool2D struct {
	in Shape3
}

var _ Layer = (*MaxPool2D)(nil)
var _ scratchLayer = (*MaxPool2D)(nil)

// NewMaxPool2D returns a 2×2/stride-2 max pool over inputs of shape in.
func NewMaxPool2D(in Shape3) *MaxPool2D {
	return &MaxPool2D{in: in}
}

// Name implements Layer.
func (p *MaxPool2D) Name() string { return "maxpool2d" }

// InShape implements Layer.
func (p *MaxPool2D) InShape() Shape3 { return p.in }

// OutShape implements Layer.
func (p *MaxPool2D) OutShape() Shape3 {
	return Shape3{C: p.in.C, H: p.in.H / 2, W: p.in.W / 2}
}

// ParamCount implements Layer.
func (p *MaxPool2D) ParamCount() int { return 0 }

// Init implements Layer (no parameters).
func (p *MaxPool2D) Init(params []float64, r *rng.RNG) {}

// ScratchSize implements scratchLayer: one saved argmax index per output
// cell.
func (p *MaxPool2D) ScratchSize() int { return p.OutShape().Size() }

// Forward implements Layer.
func (p *MaxPool2D) Forward(params, in, out, scratch []float64) {
	outSh := p.OutShape()
	planeIn := p.in.H * p.in.W
	planeOut := outSh.H * outSh.W
	for c := 0; c < p.in.C; c++ {
		inPlane := in[c*planeIn : (c+1)*planeIn]
		outPlane := out[c*planeOut : (c+1)*planeOut]
		idxPlane := scratch[c*planeOut : (c+1)*planeOut]
		for oy := 0; oy < outSh.H; oy++ {
			base := 2 * oy * p.in.W
			for ox := 0; ox < outSh.W; ox++ {
				best := base + 2*ox
				if idx := best + 1; inPlane[idx] > inPlane[best] {
					best = idx
				}
				if idx := base + p.in.W + 2*ox; inPlane[idx] > inPlane[best] {
					best = idx
				}
				if idx := base + p.in.W + 2*ox + 1; inPlane[idx] > inPlane[best] {
					best = idx
				}
				outPlane[oy*outSh.W+ox] = inPlane[best]
				idxPlane[oy*outSh.W+ox] = float64(best)
			}
		}
	}
}

// Backward implements Layer: zero gradIn, then route each output gradient to
// the window position Forward recorded in scratch.
func (p *MaxPool2D) Backward(params, in, _, gradOut, gradParams, gradIn, scratch []float64) {
	if gradIn == nil {
		return
	}
	outSh := p.OutShape()
	planeIn := p.in.H * p.in.W
	planeOut := outSh.H * outSh.W
	for i := range gradIn {
		gradIn[i] = 0
	}
	for c := 0; c < p.in.C; c++ {
		gInPlane := gradIn[c*planeIn : (c+1)*planeIn]
		gOutPlane := gradOut[c*planeOut : (c+1)*planeOut]
		idxPlane := scratch[c*planeOut : (c+1)*planeOut]
		for o, g := range gOutPlane {
			gInPlane[int(idxPlane[o])] += g
		}
	}
}
