package nn

import (
	"fmt"
	"sync"

	"hieradmo/internal/rng"
	"hieradmo/internal/tensor"
)

// Network is a feed-forward stack of layers with a classification/regression
// loss, operating over one flat parameter vector owned by the caller. The
// Network itself is immutable after construction and safe for concurrent use;
// per-call activation buffers come from an internal pool.
type Network struct {
	layers  []Layer
	offsets []int // parameter offset of each layer within the flat vector
	dim     int   // total parameter count
	loss    Loss
	pool    sync.Pool // *workspace
}

type workspace struct {
	acts  [][]float64 // acts[0] aliases nothing; acts[i+1] = output of layer i
	grads [][]float64 // activation gradients, same shapes as acts
}

// Sequential builds a network from layers and a loss, verifying that each
// layer's input shape matches the previous layer's output shape.
func Sequential(loss Loss, layers ...Layer) (*Network, error) {
	if loss == nil {
		return nil, fmt.Errorf("nn: nil loss")
	}
	if len(layers) == 0 {
		return nil, fmt.Errorf("nn: no layers")
	}
	offsets := make([]int, len(layers))
	dim := 0
	for i, l := range layers {
		if i > 0 && layers[i-1].OutShape().Size() != l.InShape().Size() {
			return nil, fmt.Errorf("nn: layer %d (%s) input %v does not match layer %d (%s) output %v",
				i, l.Name(), l.InShape(), i-1, layers[i-1].Name(), layers[i-1].OutShape())
		}
		if c, ok := l.(*Conv2D); ok {
			if err := c.Validate(); err != nil {
				return nil, fmt.Errorf("nn: layer %d: %w", i, err)
			}
		}
		offsets[i] = dim
		dim += l.ParamCount()
	}
	n := &Network{layers: layers, offsets: offsets, dim: dim, loss: loss}
	n.pool.New = func() any { return n.newWorkspace() }
	return n, nil
}

func (n *Network) newWorkspace() *workspace {
	ws := &workspace{
		acts:  make([][]float64, len(n.layers)+1),
		grads: make([][]float64, len(n.layers)+1),
	}
	ws.acts[0] = make([]float64, n.layers[0].InShape().Size())
	ws.grads[0] = make([]float64, n.layers[0].InShape().Size())
	for i, l := range n.layers {
		ws.acts[i+1] = make([]float64, l.OutShape().Size())
		ws.grads[i+1] = make([]float64, l.OutShape().Size())
	}
	return ws
}

// Dim returns the total number of parameters.
func (n *Network) Dim() int { return n.dim }

// InputSize returns the expected flattened input length.
func (n *Network) InputSize() int { return n.layers[0].InShape().Size() }

// OutputSize returns the network output length (e.g. the class count).
func (n *Network) OutputSize() int { return n.layers[len(n.layers)-1].OutShape().Size() }

// Loss returns the configured loss.
func (n *Network) Loss() Loss { return n.loss }

// Init draws fresh initial parameters using r.
func (n *Network) Init(r *rng.RNG) tensor.Vector {
	params := tensor.NewVector(n.dim)
	for i, l := range n.layers {
		l.Init(n.layerParams(params, i), r)
	}
	return params
}

func (n *Network) layerParams(params tensor.Vector, i int) []float64 {
	return params[n.offsets[i] : n.offsets[i]+n.layers[i].ParamCount()]
}

// Forward runs the network and returns the output activation. The returned
// slice is freshly allocated and owned by the caller.
func (n *Network) Forward(params tensor.Vector, x []float64) ([]float64, error) {
	if len(params) != n.dim {
		return nil, fmt.Errorf("nn: %d params, want %d: %w", len(params), n.dim, tensor.ErrDimMismatch)
	}
	if len(x) != n.InputSize() {
		return nil, fmt.Errorf("nn: input %d, want %d: %w", len(x), n.InputSize(), tensor.ErrDimMismatch)
	}
	ws, ok := n.pool.Get().(*workspace)
	if !ok {
		ws = n.newWorkspace()
	}
	defer n.pool.Put(ws)
	copy(ws.acts[0], x)
	for i, l := range n.layers {
		l.Forward(n.layerParams(params, i), ws.acts[i], ws.acts[i+1])
	}
	out := make([]float64, n.OutputSize())
	copy(out, ws.acts[len(n.layers)])
	return out, nil
}

// LossGrad computes the loss for one labelled example and accumulates the
// parameter gradient into grad (which must have length Dim and is NOT zeroed
// here, so callers can average over a mini-batch).
func (n *Network) LossGrad(params tensor.Vector, x []float64, label int, grad tensor.Vector) (float64, error) {
	if len(params) != n.dim || len(grad) != n.dim {
		return 0, fmt.Errorf("nn: params %d grad %d, want %d: %w",
			len(params), len(grad), n.dim, tensor.ErrDimMismatch)
	}
	if len(x) != n.InputSize() {
		return 0, fmt.Errorf("nn: input %d, want %d: %w", len(x), n.InputSize(), tensor.ErrDimMismatch)
	}
	if label < 0 || label >= n.OutputSize() {
		return 0, fmt.Errorf("nn: label %d out of range [0,%d)", label, n.OutputSize())
	}
	ws, ok := n.pool.Get().(*workspace)
	if !ok {
		ws = n.newWorkspace()
	}
	defer n.pool.Put(ws)

	copy(ws.acts[0], x)
	for i, l := range n.layers {
		l.Forward(n.layerParams(params, i), ws.acts[i], ws.acts[i+1])
	}
	last := len(n.layers)
	loss := n.loss.LossGrad(ws.acts[last], label, ws.grads[last])
	for i := len(n.layers) - 1; i >= 0; i-- {
		l := n.layers[i]
		gp := grad[n.offsets[i] : n.offsets[i]+l.ParamCount()]
		l.Backward(n.layerParams(params, i), ws.acts[i], ws.grads[i+1], gp, ws.grads[i])
	}
	return loss, nil
}

// Predict returns the argmax output class for x.
func (n *Network) Predict(params tensor.Vector, x []float64) (int, error) {
	out, err := n.Forward(params, x)
	if err != nil {
		return 0, err
	}
	return tensor.Vector(out).ArgMax(), nil
}
