package nn

import (
	"fmt"
	"sync"

	"hieradmo/internal/rng"
	"hieradmo/internal/tensor"
)

// Network is a feed-forward stack of layers with a classification/regression
// loss, operating over one flat parameter vector owned by the caller. The
// Network itself is immutable after construction and safe for concurrent use;
// per-call activation, gradient, and kernel-scratch buffers come from an
// internal pool, so the training loop is allocation-free in steady state.
type Network struct {
	layers  []Layer
	offsets []int // parameter offset of each layer within the flat vector
	dim     int   // total parameter count
	loss    Loss
	pool    sync.Pool // *workspace
}

type workspace struct {
	acts    [][]float64 // acts[0] aliases nothing; acts[i+1] = output of layer i
	grads   [][]float64 // activation gradients, same shapes as acts
	scratch [][]float64 // per-layer kernel scratch (nil when the layer needs none)
}

// Sequential builds a network from layers and a loss, verifying that each
// layer's input shape matches the previous layer's output shape. A Conv2D
// immediately followed by a ReLU is fused into one conv2d+relu layer: the
// parameter layout, initialization stream, and every computed bit are
// unchanged (the ReLU holds no parameters), but the pair costs one layer
// slot, one workspace buffer, and one cache-warm in-place pass instead of
// two.
func Sequential(loss Loss, layers ...Layer) (*Network, error) {
	if loss == nil {
		return nil, fmt.Errorf("nn: nil loss")
	}
	if len(layers) == 0 {
		return nil, fmt.Errorf("nn: no layers")
	}
	for i, l := range layers {
		if i > 0 && layers[i-1].OutShape().Size() != l.InShape().Size() {
			return nil, fmt.Errorf("nn: layer %d (%s) input %v does not match layer %d (%s) output %v",
				i, l.Name(), l.InShape(), i-1, layers[i-1].Name(), layers[i-1].OutShape())
		}
		if c, ok := l.(*Conv2D); ok {
			if err := c.Validate(); err != nil {
				return nil, fmt.Errorf("nn: layer %d: %w", i, err)
			}
		}
	}
	fused := make([]Layer, 0, len(layers))
	for i := 0; i < len(layers); i++ {
		if i+1 < len(layers) {
			if f := fuseConvReLU(layers[i], layers[i+1]); f != nil {
				fused = append(fused, f)
				i++
				continue
			}
		}
		fused = append(fused, layers[i])
	}
	offsets := make([]int, len(fused))
	dim := 0
	for i, l := range fused {
		offsets[i] = dim
		dim += l.ParamCount()
	}
	n := &Network{layers: fused, offsets: offsets, dim: dim, loss: loss}
	n.pool.New = func() any { return n.newWorkspace() }
	return n, nil
}

func (n *Network) newWorkspace() *workspace {
	ws := &workspace{
		acts:    make([][]float64, len(n.layers)+1),
		grads:   make([][]float64, len(n.layers)+1),
		scratch: make([][]float64, len(n.layers)),
	}
	ws.acts[0] = make([]float64, n.layers[0].InShape().Size())
	ws.grads[0] = make([]float64, n.layers[0].InShape().Size())
	for i, l := range n.layers {
		ws.acts[i+1] = make([]float64, l.OutShape().Size())
		ws.grads[i+1] = make([]float64, l.OutShape().Size())
		if sl, ok := l.(scratchLayer); ok {
			if sz := sl.ScratchSize(); sz > 0 {
				ws.scratch[i] = make([]float64, sz)
			}
		}
	}
	return ws
}

func (n *Network) getWorkspace() *workspace {
	ws, ok := n.pool.Get().(*workspace)
	if !ok {
		ws = n.newWorkspace()
	}
	return ws
}

// Dim returns the total number of parameters.
func (n *Network) Dim() int { return n.dim }

// InputSize returns the expected flattened input length.
func (n *Network) InputSize() int { return n.layers[0].InShape().Size() }

// OutputSize returns the network output length (e.g. the class count).
func (n *Network) OutputSize() int { return n.layers[len(n.layers)-1].OutShape().Size() }

// Loss returns the configured loss.
func (n *Network) Loss() Loss { return n.loss }

// Init draws fresh initial parameters using r.
func (n *Network) Init(r *rng.RNG) tensor.Vector {
	params := tensor.NewVector(n.dim)
	for i, l := range n.layers {
		l.Init(n.layerParams(params, i), r)
	}
	return params
}

func (n *Network) layerParams(params tensor.Vector, i int) []float64 {
	return params[n.offsets[i] : n.offsets[i]+n.layers[i].ParamCount()]
}

// checkForward validates the Forward/Predict argument lengths.
func (n *Network) checkForward(params tensor.Vector, x []float64) error {
	if len(params) != n.dim {
		return fmt.Errorf("nn: %d params, want %d: %w", len(params), n.dim, tensor.ErrDimMismatch)
	}
	if len(x) != n.InputSize() {
		return fmt.Errorf("nn: input %d, want %d: %w", len(x), n.InputSize(), tensor.ErrDimMismatch)
	}
	return nil
}

// forward runs the layer stack inside ws, leaving the output activation in
// ws.acts[len(layers)].
func (n *Network) forward(ws *workspace, params tensor.Vector, x []float64) {
	copy(ws.acts[0], x)
	for i, l := range n.layers {
		l.Forward(n.layerParams(params, i), ws.acts[i], ws.acts[i+1], ws.scratch[i])
	}
}

// Forward runs the network and returns the output activation. The returned
// slice is freshly allocated and owned by the caller.
func (n *Network) Forward(params tensor.Vector, x []float64) ([]float64, error) {
	if err := n.checkForward(params, x); err != nil {
		return nil, err
	}
	ws := n.getWorkspace()
	defer n.pool.Put(ws)
	n.forward(ws, params, x)
	out := make([]float64, n.OutputSize())
	copy(out, ws.acts[len(n.layers)])
	return out, nil
}

// LossGrad computes the loss for one labelled example and accumulates the
// parameter gradient into grad (which must have length Dim and is NOT zeroed
// here, so callers can average over a mini-batch).
func (n *Network) LossGrad(params tensor.Vector, x []float64, label int, grad tensor.Vector) (float64, error) {
	if len(params) != n.dim || len(grad) != n.dim {
		return 0, fmt.Errorf("nn: params %d grad %d, want %d: %w",
			len(params), len(grad), n.dim, tensor.ErrDimMismatch)
	}
	if err := n.checkForward(params, x); err != nil {
		return 0, err
	}
	if label < 0 || label >= n.OutputSize() {
		return 0, fmt.Errorf("nn: label %d out of range [0,%d)", label, n.OutputSize())
	}
	ws := n.getWorkspace()
	defer n.pool.Put(ws)

	n.forward(ws, params, x)
	last := len(n.layers)
	loss := n.loss.LossGrad(ws.acts[last], label, ws.grads[last])
	for i := len(n.layers) - 1; i >= 0; i-- {
		l := n.layers[i]
		gp := grad[n.offsets[i] : n.offsets[i]+l.ParamCount()]
		gi := ws.grads[i]
		if i == 0 {
			// Nothing consumes the input gradient; layers skip computing it.
			gi = nil
		}
		l.Backward(n.layerParams(params, i), ws.acts[i], ws.acts[i+1],
			ws.grads[i+1], gp, gi, ws.scratch[i])
	}
	return loss, nil
}

// Predict returns the argmax output class for x without allocating: the
// output activation stays inside the pooled workspace.
func (n *Network) Predict(params tensor.Vector, x []float64) (int, error) {
	if err := n.checkForward(params, x); err != nil {
		return 0, err
	}
	ws := n.getWorkspace()
	defer n.pool.Put(ws)
	n.forward(ws, params, x)
	return tensor.Vector(ws.acts[len(n.layers)]).ArgMax(), nil
}
