package nn

import (
	"math"
	"testing"
)

func TestGradSigmoid(t *testing.T) {
	net, err := Sequential(SoftmaxCrossEntropy{},
		NewDense(5, 6),
		NewSigmoid(Shape3{C: 1, H: 1, W: 6}),
		NewDense(6, 3),
	)
	if err != nil {
		t.Fatal(err)
	}
	checkGradients(t, net, 21, 1e-4)
}

func TestGradTanh(t *testing.T) {
	net, err := Sequential(MSEOneHot{},
		NewDense(5, 6),
		NewTanh(Shape3{C: 1, H: 1, W: 6}),
		NewDense(6, 3),
	)
	if err != nil {
		t.Fatal(err)
	}
	checkGradients(t, net, 22, 1e-4)
}

func TestGradAvgPool(t *testing.T) {
	in := Shape3{C: 2, H: 6, W: 6}
	conv := NewConv2D(in, 2, 3, 1)
	pool := NewAvgPool2D(conv.OutShape())
	flat := NewFlatten(pool.OutShape())
	net, err := Sequential(SoftmaxCrossEntropy{},
		conv, pool, flat, NewDense(pool.OutShape().Size(), 3),
	)
	if err != nil {
		t.Fatal(err)
	}
	checkGradients(t, net, 23, 1e-4)
}

func TestGradGlobalAvgPool(t *testing.T) {
	in := Shape3{C: 1, H: 6, W: 6}
	conv := NewConv2D(in, 4, 3, 1)
	gap := NewGlobalAvgPool(conv.OutShape())
	net, err := Sequential(SoftmaxCrossEntropy{},
		conv, gap, NewDense(4, 3),
	)
	if err != nil {
		t.Fatal(err)
	}
	checkGradients(t, net, 24, 1e-4)
}

func TestSigmoidRange(t *testing.T) {
	l := NewSigmoid(Shape3{C: 1, H: 1, W: 3})
	out := make([]float64, 3)
	l.Forward(nil, []float64{-1000, 0, 1000}, out, nil)
	if out[0] < 0 || out[0] > 1e-9 {
		t.Errorf("sigmoid(-1000) = %v", out[0])
	}
	if math.Abs(out[1]-0.5) > 1e-12 {
		t.Errorf("sigmoid(0) = %v", out[1])
	}
	if out[2] > 1 || out[2] < 1-1e-9 {
		t.Errorf("sigmoid(1000) = %v", out[2])
	}
}

func TestTanhOddSymmetry(t *testing.T) {
	l := NewTanh(Shape3{C: 1, H: 1, W: 2})
	out := make([]float64, 2)
	l.Forward(nil, []float64{0.7, -0.7}, out, nil)
	if math.Abs(out[0]+out[1]) > 1e-12 {
		t.Errorf("tanh not odd: %v vs %v", out[0], out[1])
	}
}

func TestAvgPoolValues(t *testing.T) {
	p := NewAvgPool2D(Shape3{C: 1, H: 2, W: 2})
	out := make([]float64, 1)
	p.Forward(nil, []float64{1, 2, 3, 6}, out, nil)
	if out[0] != 3 {
		t.Errorf("avg = %v, want 3", out[0])
	}
}

func TestGlobalAvgPoolValues(t *testing.T) {
	p := NewGlobalAvgPool(Shape3{C: 2, H: 1, W: 2})
	out := make([]float64, 2)
	p.Forward(nil, []float64{1, 3, 10, 20}, out, nil)
	if out[0] != 2 || out[1] != 15 {
		t.Errorf("gap = %v, want [2 15]", out)
	}
}

func TestExtraLayerMetadata(t *testing.T) {
	in := Shape3{C: 2, H: 4, W: 4}
	tests := []struct {
		layer    Layer
		wantName string
		wantOut  int
	}{
		{layer: NewSigmoid(in), wantName: "sigmoid", wantOut: 32},
		{layer: NewTanh(in), wantName: "tanh", wantOut: 32},
		{layer: NewAvgPool2D(in), wantName: "avgpool2d", wantOut: 8},
		{layer: NewGlobalAvgPool(in), wantName: "globalavgpool", wantOut: 2},
	}
	for _, tt := range tests {
		t.Run(tt.wantName, func(t *testing.T) {
			if got := tt.layer.Name(); got != tt.wantName {
				t.Errorf("Name = %q", got)
			}
			if got := tt.layer.OutShape().Size(); got != tt.wantOut {
				t.Errorf("out size = %d, want %d", got, tt.wantOut)
			}
			if tt.layer.ParamCount() != 0 {
				t.Errorf("ParamCount = %d, want 0", tt.layer.ParamCount())
			}
		})
	}
}
