package nn

import (
	"math"
	"testing"
	"testing/quick"
)

func finiteLogits(raw []float64, classes int) []float64 {
	out := make([]float64, classes)
	for i := range out {
		if i < len(raw) && !math.IsNaN(raw[i]) && !math.IsInf(raw[i], 0) {
			// Compress into a numerically comfortable range.
			out[i] = math.Mod(raw[i], 50)
		}
	}
	return out
}

func TestSoftmaxGradSumsToZeroProperty(t *testing.T) {
	loss := SoftmaxCrossEntropy{}
	f := func(raw []float64, labelRaw uint8) bool {
		const classes = 5
		logits := finiteLogits(raw, classes)
		label := int(labelRaw) % classes
		grad := make([]float64, classes)
		l := loss.LossGrad(logits, label, grad)
		if math.IsNaN(l) || l < 0 {
			return false
		}
		var sum float64
		for _, g := range grad {
			sum += g
		}
		return math.Abs(sum) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSoftmaxLossNonNegativeProperty(t *testing.T) {
	loss := SoftmaxCrossEntropy{}
	f := func(raw []float64, labelRaw uint8) bool {
		const classes = 4
		logits := finiteLogits(raw, classes)
		label := int(labelRaw) % classes
		grad := make([]float64, classes)
		return loss.LossGrad(logits, label, grad) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMSEGradIsResidualProperty(t *testing.T) {
	loss := MSEOneHot{}
	f := func(raw []float64, labelRaw uint8) bool {
		const classes = 4
		out := finiteLogits(raw, classes)
		label := int(labelRaw) % classes
		grad := make([]float64, classes)
		l := loss.LossGrad(out, label, grad)
		if l < 0 {
			return false
		}
		for i := range out {
			target := 0.0
			if i == label {
				target = 1
			}
			if math.Abs(grad[i]-(out[i]-target)) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestBatchGradIsMeanOfSampleGrads pins the batching contract the FL
// algorithms rely on: the mini-batch gradient equals the mean of per-sample
// gradients.
func TestBatchGradIsMeanOfSampleGrads(t *testing.T) {
	net, err := Sequential(SoftmaxCrossEntropy{},
		NewDense(4, 5),
		NewReLU(Shape3{C: 1, H: 1, W: 5}),
		NewDense(5, 3),
	)
	if err != nil {
		t.Fatal(err)
	}
	params := net.Init(newTestRNG(31))
	xs := [][]float64{
		{0.5, -1, 0.25, 2},
		{-0.5, 1, 0, -2},
		{1, 1, -1, 0.5},
	}
	labels := []int{0, 2, 1}

	batchGrad := make([]float64, net.Dim())
	for k := range xs {
		if _, err := net.LossGrad(params, xs[k], labels[k], batchGrad); err != nil {
			t.Fatal(err)
		}
	}
	for i := range batchGrad {
		batchGrad[i] /= float64(len(xs))
	}

	meanGrad := make([]float64, net.Dim())
	for k := range xs {
		g := make([]float64, net.Dim())
		if _, err := net.LossGrad(params, xs[k], labels[k], g); err != nil {
			t.Fatal(err)
		}
		for i := range meanGrad {
			meanGrad[i] += g[i] / float64(len(xs))
		}
	}
	for i := range batchGrad {
		if math.Abs(batchGrad[i]-meanGrad[i]) > 1e-12 {
			t.Fatalf("batch grad diverges from per-sample mean at %d", i)
		}
	}
}
