package nn

import (
	"fmt"
	"math"

	"hieradmo/internal/rng"
	"hieradmo/internal/tensor"
)

// Conv2D is a 2-D convolution with square kernels, unit stride and symmetric
// zero padding. Parameters are laid out as weights [outC][inC][k][k] followed
// by biases [outC].
//
// Forward and Backward run on an im2col/GEMM path: the receptive-field
// patches are gathered into a K×P matrix (K = inC·k·k rows in (ic, ky, kx)
// order, P = outH·outW pixel columns) and handed to the blocked kernels in
// internal/tensor. The patch row order plus tensor.GEMMBias's per-channel
// chunked accumulation (kChunk = k·k) reproduce the naive nested loops'
// summation sequence exactly, so results are bitwise identical to the
// retained reference implementation in conv_ref.go (asserted over a shape
// table and a fuzz target in conv_equiv_test.go) and golden traces are
// unchanged. The equivalence holds for finite inputs: boundary cells enter
// the GEMM as ±0 products, which can never flip an accumulator's bits (see
// the contract note in internal/tensor/gemm.go).
type Conv2D struct {
	in   Shape3
	outC int
	k    int
	pad  int
}

var _ Layer = (*Conv2D)(nil)
var _ scratchLayer = (*Conv2D)(nil)

// NewConv2D returns a convolution over inputs of shape in producing outC
// channels with a k×k kernel and padding pad. It never panics: invalid
// geometry (non-positive kernel or channel counts, negative padding, or an
// output plane with no pixels) is reported by Validate, which the Network
// builder calls during Sequential.
func NewConv2D(in Shape3, outC, k, pad int) *Conv2D {
	return &Conv2D{in: in, outC: outC, k: k, pad: pad}
}

// Validate reports whether the layer geometry produces a positive output
// size.
func (c *Conv2D) Validate() error {
	out := c.OutShape()
	if c.k <= 0 || c.outC <= 0 || c.pad < 0 {
		return fmt.Errorf("nn: conv2d invalid config k=%d outC=%d pad=%d", c.k, c.outC, c.pad)
	}
	if out.H <= 0 || out.W <= 0 {
		return fmt.Errorf("nn: conv2d output %dx%d not positive for input %dx%d k=%d pad=%d",
			out.H, out.W, c.in.H, c.in.W, c.k, c.pad)
	}
	return nil
}

// Name implements Layer.
func (c *Conv2D) Name() string { return "conv2d" }

// InShape implements Layer.
func (c *Conv2D) InShape() Shape3 { return c.in }

// OutShape implements Layer.
func (c *Conv2D) OutShape() Shape3 {
	return Shape3{
		C: c.outC,
		H: c.in.H + 2*c.pad - c.k + 1,
		W: c.in.W + 2*c.pad - c.k + 1,
	}
}

// ParamCount implements Layer.
func (c *Conv2D) ParamCount() int { return c.outC*c.in.C*c.k*c.k + c.outC }

// Init implements Layer with He initialization over the kernel fan-in.
func (c *Conv2D) Init(params []float64, r *rng.RNG) {
	fanIn := float64(c.in.C * c.k * c.k)
	std := math.Sqrt(2.0 / fanIn)
	nw := c.outC * c.in.C * c.k * c.k
	for i := 0; i < nw; i++ {
		params[i] = std * r.Norm()
	}
	for i := nw; i < len(params); i++ {
		params[i] = 0
	}
}

// padSize is the element count of one zero-padded input volume.
func (c *Conv2D) padSize() int {
	return c.in.C * (c.in.H + 2*c.pad) * (c.in.W + 2*c.pad)
}

// patchSize is the element count of the im2col patch matrix (K×P).
func (c *Conv2D) patchSize() int {
	out := c.OutShape()
	return c.in.C * c.k * c.k * out.H * out.W
}

// ScratchSize implements scratchLayer. The scratch region holds, in order,
// the zero-padded input volume, a zero-padded input-gradient volume (used by
// Backward only), and the im2col patch matrix. Unpadded layers skip the two
// padded volumes and gather patches straight from the input (a 1×1 unpadded
// kernel needs no scratch at all: the input already is the patch matrix).
func (c *Conv2D) ScratchSize() int {
	if c.k == 1 && c.pad == 0 {
		return 0
	}
	if c.pad == 0 {
		return c.patchSize()
	}
	return 2*c.padSize() + c.patchSize()
}

// pad2d zero-pads in (C×H×W) into dst (C×(H+2p)×(W+2p)).
func (c *Conv2D) pad2d(dst, in []float64) {
	pH, pW := c.in.H+2*c.pad, c.in.W+2*c.pad
	for i := range dst {
		dst[i] = 0
	}
	for ic := 0; ic < c.in.C; ic++ {
		src := in[ic*c.in.H*c.in.W:]
		dstPlane := dst[ic*pH*pW:]
		for y := 0; y < c.in.H; y++ {
			copy(dstPlane[(y+c.pad)*pW+c.pad:(y+c.pad)*pW+c.pad+c.in.W],
				src[y*c.in.W:(y+1)*c.in.W])
		}
	}
}

// im2col gathers the padded input into the K×P patch matrix inside scratch
// and returns it. Row (ic·k² + ky·k + kx) holds, for every output pixel
// p = oy·outW + ox, the padded input value at channel ic, position
// (oy+ky, ox+kx) — each (ky, oy) pair is one contiguous outW-length copy.
// When the geometry makes the input its own patch matrix (1×1 kernel, no
// padding) the input slice is returned directly, uncopied.
func (c *Conv2D) im2col(in, scratch []float64) []float64 {
	if c.k == 1 && c.pad == 0 {
		return in
	}
	out := c.OutShape()
	src, pW := in, c.in.W
	patch := scratch[:c.patchSize()]
	if c.pad > 0 {
		padded := scratch[:c.padSize()]
		c.pad2d(padded, in)
		src, pW = padded, c.in.W+2*c.pad
		patch = scratch[2*c.padSize() : 2*c.padSize()+c.patchSize()]
	}
	pH := c.in.H + 2*c.pad
	P := out.H * out.W
	for ic := 0; ic < c.in.C; ic++ {
		srcPlane := src[ic*pH*pW:]
		for ky := 0; ky < c.k; ky++ {
			for kx := 0; kx < c.k; kx++ {
				row := patch[(ic*c.k*c.k+ky*c.k+kx)*P:]
				for oy := 0; oy < out.H; oy++ {
					copy(row[oy*out.W:(oy+1)*out.W],
						srcPlane[(oy+ky)*pW+kx:(oy+ky)*pW+kx+out.W])
				}
			}
		}
	}
	return patch
}

// Forward implements Layer.
func (c *Conv2D) Forward(params, in, out, scratch []float64) {
	outSh := c.OutShape()
	nw := c.outC * c.in.C * c.k * c.k
	w, b := params[:nw], params[nw:]
	patch := c.im2col(in, scratch)
	tensor.GEMMBias(out, w, patch, b,
		c.outC, outSh.H*outSh.W, c.in.C*c.k*c.k, c.k*c.k)
}

// patchInScratch returns the im2col patch matrix that the preceding Forward
// call left in scratch (see the persistence contract in layer.go), without
// rebuilding it. For the 1×1 unpadded geometry the input is its own patch.
func (c *Conv2D) patchInScratch(in, scratch []float64) []float64 {
	if c.k == 1 && c.pad == 0 {
		return in
	}
	if c.pad == 0 {
		return scratch[:c.patchSize()]
	}
	return scratch[2*c.padSize() : 2*c.padSize()+c.patchSize()]
}

// Backward implements Layer. It reuses the patch matrix cached in scratch by
// the matching Forward call instead of re-running pad2d/im2col, and skips the
// input-gradient scatter entirely when gradIn is nil (first network layer).
func (c *Conv2D) Backward(params, in, out, gradOut, gradParams, gradIn, scratch []float64) {
	outSh := c.OutShape()
	nw := c.outC * c.in.C * c.k * c.k
	w := params[:nw]
	gw, gb := gradParams[:nw], gradParams[nw:]
	P := outSh.H * outSh.W

	// Bias gradient: plain per-channel sums over the output plane, hoisted
	// into a register but added in the same pixel order as ever.
	for oc := 0; oc < c.outC; oc++ {
		s := gb[oc]
		for _, g := range gradOut[oc*P : (oc+1)*P] {
			s += g
		}
		gb[oc] = s
	}

	// Weight gradient: gw[oc, (ic,ky,kx)] += Σ_p gradOut[oc,p]·patch[(ic,ky,kx),p]
	// — one A·Bᵀ accumulation over the cached patch matrix. Ascending-p
	// accumulation from the existing gw value matches the reference loops.
	patch := c.patchInScratch(in, scratch)
	tensor.GEMMAddTransB(gw, gradOut, patch, c.outC, c.in.C*c.k*c.k, P)

	if gradIn == nil {
		return
	}

	// Input gradient: an order-preserving scatter. A col2im GEMM would
	// re-associate the per-cell sums (each input cell receives contributions
	// from many (oc, pixel, tap) triples in a fixed interleaved order), so
	// the scatter keeps the reference loop nest and only drops the bounds
	// branches by writing into a zero-padded plane that is cropped after.
	if c.pad == 0 {
		c.scatterGradIn(w, gradOut, gradIn, c.in.H, c.in.W)
		return
	}
	pH, pW := c.in.H+2*c.pad, c.in.W+2*c.pad
	gpad := scratch[c.padSize() : 2*c.padSize()]
	c.scatterGradIn(w, gradOut, gpad, pH, pW)
	for ic := 0; ic < c.in.C; ic++ {
		gSrc := gpad[ic*pH*pW:]
		gDst := gradIn[ic*c.in.H*c.in.W:]
		for y := 0; y < c.in.H; y++ {
			copy(gDst[y*c.in.W:(y+1)*c.in.W],
				gSrc[(y+c.pad)*pW+c.pad:(y+c.pad)*pW+c.pad+c.in.W])
		}
	}
}

// scatterGradIn accumulates the input gradient into dst, a (possibly padded)
// C×dH×dW volume that is zeroed here first. The loop nest (oc, ic, pixel,
// ky, kx) and the zero-gradient skip mirror the reference backward exactly;
// with padding the bounds checks vanish because every tap lands in dst.
func (c *Conv2D) scatterGradIn(w, gradOut, dst []float64, dH, dW int) {
	outSh := c.OutShape()
	P := outSh.H * outSh.W
	for i := range dst {
		dst[i] = 0
	}
	for oc := 0; oc < c.outC; oc++ {
		gOutPlane := gradOut[oc*P : (oc+1)*P]
		for ic := 0; ic < c.in.C; ic++ {
			kernel := w[(oc*c.in.C+ic)*c.k*c.k : (oc*c.in.C+ic+1)*c.k*c.k]
			dPlane := dst[ic*dH*dW:]
			if c.k == 3 {
				// The zoo is all-3×3; lifting the nine weights into
				// registers once per (oc, ic) pair removes two slice
				// constructions and the tap loop from every pixel. Adds
				// happen in the same (ky, kx) order as the generic nest.
				k0, k1, k2 := kernel[0], kernel[1], kernel[2]
				k3, k4, k5 := kernel[3], kernel[4], kernel[5]
				k6, k7, k8 := kernel[6], kernel[7], kernel[8]
				for oy := 0; oy < outSh.H; oy++ {
					for ox := 0; ox < outSh.W; ox++ {
						g := gOutPlane[oy*outSh.W+ox]
						if g == 0 {
							continue
						}
						r0 := dPlane[oy*dW+ox : oy*dW+ox+3 : oy*dW+ox+3]
						r1 := dPlane[(oy+1)*dW+ox : (oy+1)*dW+ox+3 : (oy+1)*dW+ox+3]
						r2 := dPlane[(oy+2)*dW+ox : (oy+2)*dW+ox+3 : (oy+2)*dW+ox+3]
						r0[0] += g * k0
						r0[1] += g * k1
						r0[2] += g * k2
						r1[0] += g * k3
						r1[1] += g * k4
						r1[2] += g * k5
						r2[0] += g * k6
						r2[1] += g * k7
						r2[2] += g * k8
					}
				}
				continue
			}
			for oy := 0; oy < outSh.H; oy++ {
				for ox := 0; ox < outSh.W; ox++ {
					g := gOutPlane[oy*outSh.W+ox]
					if g == 0 {
						continue
					}
					for ky := 0; ky < c.k; ky++ {
						row := dPlane[(oy+ky)*dW+ox : (oy+ky)*dW+ox+c.k]
						krow := kernel[ky*c.k : (ky+1)*c.k]
						for kx, kw := range krow {
							row[kx] += g * kw
						}
					}
				}
			}
		}
	}
}
