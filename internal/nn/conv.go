package nn

import (
	"fmt"
	"math"

	"hieradmo/internal/rng"
)

// Conv2D is a 2-D convolution with square kernels, unit stride and symmetric
// zero padding. Parameters are laid out as weights [outC][inC][k][k] followed
// by biases [outC].
type Conv2D struct {
	in   Shape3
	outC int
	k    int
	pad  int
}

var _ Layer = (*Conv2D)(nil)

// NewConv2D returns a convolution over inputs of shape in producing outC
// channels with a k×k kernel and padding pad. It never panics: invalid
// geometry (non-positive kernel or channel counts, negative padding, or an
// output plane with no pixels) is reported by Validate, which the Network
// builder calls during Sequential.
func NewConv2D(in Shape3, outC, k, pad int) *Conv2D {
	return &Conv2D{in: in, outC: outC, k: k, pad: pad}
}

// Validate reports whether the layer geometry produces a positive output
// size.
func (c *Conv2D) Validate() error {
	out := c.OutShape()
	if c.k <= 0 || c.outC <= 0 || c.pad < 0 {
		return fmt.Errorf("nn: conv2d invalid config k=%d outC=%d pad=%d", c.k, c.outC, c.pad)
	}
	if out.H <= 0 || out.W <= 0 {
		return fmt.Errorf("nn: conv2d output %dx%d not positive for input %dx%d k=%d pad=%d",
			out.H, out.W, c.in.H, c.in.W, c.k, c.pad)
	}
	return nil
}

// Name implements Layer.
func (c *Conv2D) Name() string { return "conv2d" }

// InShape implements Layer.
func (c *Conv2D) InShape() Shape3 { return c.in }

// OutShape implements Layer.
func (c *Conv2D) OutShape() Shape3 {
	return Shape3{
		C: c.outC,
		H: c.in.H + 2*c.pad - c.k + 1,
		W: c.in.W + 2*c.pad - c.k + 1,
	}
}

// ParamCount implements Layer.
func (c *Conv2D) ParamCount() int { return c.outC*c.in.C*c.k*c.k + c.outC }

// Init implements Layer with He initialization over the kernel fan-in.
func (c *Conv2D) Init(params []float64, r *rng.RNG) {
	fanIn := float64(c.in.C * c.k * c.k)
	std := math.Sqrt(2.0 / fanIn)
	nw := c.outC * c.in.C * c.k * c.k
	for i := 0; i < nw; i++ {
		params[i] = std * r.Norm()
	}
	for i := nw; i < len(params); i++ {
		params[i] = 0
	}
}

// Forward implements Layer.
func (c *Conv2D) Forward(params, in, out []float64) {
	outSh := c.OutShape()
	nw := c.outC * c.in.C * c.k * c.k
	w, b := params[:nw], params[nw:]
	planeIn := c.in.H * c.in.W
	planeOut := outSh.H * outSh.W
	for oc := 0; oc < c.outC; oc++ {
		bias := b[oc]
		outPlane := out[oc*planeOut : (oc+1)*planeOut]
		for i := range outPlane {
			outPlane[i] = bias
		}
		for ic := 0; ic < c.in.C; ic++ {
			kernel := w[(oc*c.in.C+ic)*c.k*c.k : (oc*c.in.C+ic+1)*c.k*c.k]
			inPlane := in[ic*planeIn : (ic+1)*planeIn]
			for oy := 0; oy < outSh.H; oy++ {
				for ox := 0; ox < outSh.W; ox++ {
					var s float64
					for ky := 0; ky < c.k; ky++ {
						iy := oy + ky - c.pad
						if iy < 0 || iy >= c.in.H {
							continue
						}
						rowIn := inPlane[iy*c.in.W:]
						rowK := kernel[ky*c.k:]
						for kx := 0; kx < c.k; kx++ {
							ix := ox + kx - c.pad
							if ix < 0 || ix >= c.in.W {
								continue
							}
							s += rowK[kx] * rowIn[ix]
						}
					}
					outPlane[oy*outSh.W+ox] += s
				}
			}
		}
	}
}

// Backward implements Layer.
func (c *Conv2D) Backward(params, in, gradOut, gradParams, gradIn []float64) {
	outSh := c.OutShape()
	nw := c.outC * c.in.C * c.k * c.k
	w := params[:nw]
	gw, gb := gradParams[:nw], gradParams[nw:]
	planeIn := c.in.H * c.in.W
	planeOut := outSh.H * outSh.W
	for i := range gradIn {
		gradIn[i] = 0
	}
	for oc := 0; oc < c.outC; oc++ {
		gOutPlane := gradOut[oc*planeOut : (oc+1)*planeOut]
		for _, g := range gOutPlane {
			gb[oc] += g
		}
		for ic := 0; ic < c.in.C; ic++ {
			kernel := w[(oc*c.in.C+ic)*c.k*c.k : (oc*c.in.C+ic+1)*c.k*c.k]
			gKernel := gw[(oc*c.in.C+ic)*c.k*c.k : (oc*c.in.C+ic+1)*c.k*c.k]
			inPlane := in[ic*planeIn : (ic+1)*planeIn]
			gInPlane := gradIn[ic*planeIn : (ic+1)*planeIn]
			for oy := 0; oy < outSh.H; oy++ {
				for ox := 0; ox < outSh.W; ox++ {
					g := gOutPlane[oy*outSh.W+ox]
					if g == 0 {
						continue
					}
					for ky := 0; ky < c.k; ky++ {
						iy := oy + ky - c.pad
						if iy < 0 || iy >= c.in.H {
							continue
						}
						for kx := 0; kx < c.k; kx++ {
							ix := ox + kx - c.pad
							if ix < 0 || ix >= c.in.W {
								continue
							}
							idx := iy*c.in.W + ix
							gKernel[ky*c.k+kx] += g * inPlane[idx]
							gInPlane[idx] += g * kernel[ky*c.k+kx]
						}
					}
				}
			}
		}
	}
}
