package nn

import (
	"math"
	"testing"

	"hieradmo/internal/rng"
)

// convGeometries is the equivalence shape table. It deliberately includes
// the degenerate corners: padding equal to and exceeding the input size,
// 1×1 kernels (the patch-free fast path), even kernel sizes, kernels the
// size of the whole input, and single-pixel outputs.
var convGeometries = []struct {
	name string
	in   Shape3
	outC int
	k    int
	pad  int
}{
	{"cnn-first", Shape3{C: 1, H: 8, W: 8}, 8, 3, 1},
	{"cnn-second", Shape3{C: 8, H: 4, W: 4}, 16, 3, 1},
	{"no-pad", Shape3{C: 3, H: 6, W: 5}, 4, 3, 0},
	{"one-by-one", Shape3{C: 4, H: 5, W: 5}, 6, 1, 0},
	{"one-by-one-padded", Shape3{C: 2, H: 3, W: 3}, 3, 1, 1},
	{"even-kernel", Shape3{C: 2, H: 6, W: 6}, 3, 2, 0},
	{"even-kernel-padded", Shape3{C: 2, H: 5, W: 4}, 3, 4, 2},
	{"pad-at-input-size", Shape3{C: 2, H: 3, W: 3}, 2, 3, 3},
	{"pad-over-input-size", Shape3{C: 1, H: 2, W: 2}, 2, 3, 4},
	{"single-pixel-out", Shape3{C: 2, H: 4, W: 4}, 3, 4, 0},
	{"single-pixel-in", Shape3{C: 3, H: 1, W: 1}, 2, 1, 0},
	{"wide-kernel-thin-input", Shape3{C: 1, H: 1, W: 7}, 2, 3, 1},
}

// runConvEquiv drives one geometry with seeded data through both paths and
// fails on the first differing bit.
func runConvEquiv(t *testing.T, in Shape3, outC, k, pad int, seed uint64) {
	t.Helper()
	c := NewConv2D(in, outC, k, pad)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	r := rng.New(seed)
	params := make([]float64, c.ParamCount())
	c.Init(params, r)
	inSize, outSize := in.Size(), c.OutShape().Size()
	x := make([]float64, inSize)
	gradOut := make([]float64, outSize)
	for i := range x {
		x[i] = r.Norm()
	}
	for i := range gradOut {
		// A sparse gradient exercises the reference's zero-skip branch
		// against the kernels' ±0-product contract.
		if r.Float64() < 0.3 {
			gradOut[i] = 0
		} else {
			gradOut[i] = r.Norm()
		}
	}
	scratch := make([]float64, c.ScratchSize())

	outRef := make([]float64, outSize)
	outGEMM := make([]float64, outSize)
	c.forwardRef(params, x, outRef)
	c.Forward(params, x, outGEMM, scratch)
	for i := range outRef {
		if math.Float64bits(outRef[i]) != math.Float64bits(outGEMM[i]) {
			t.Fatalf("forward out[%d]: ref %x gemm %x", i, outRef[i], outGEMM[i])
		}
	}

	// Non-zero starting gradients check the accumulate-into semantics.
	gpRef := make([]float64, c.ParamCount())
	gpGEMM := make([]float64, c.ParamCount())
	for i := range gpRef {
		gpRef[i] = r.Norm() * 0.01
	}
	copy(gpGEMM, gpRef)
	giRef := make([]float64, inSize)
	giGEMM := make([]float64, inSize)
	gradOut2 := make([]float64, outSize)
	copy(gradOut2, gradOut)
	c.backwardRef(params, x, gradOut, gpRef, giRef)
	c.Backward(params, x, outGEMM, gradOut2, gpGEMM, giGEMM, scratch)
	for i := range gpRef {
		if math.Float64bits(gpRef[i]) != math.Float64bits(gpGEMM[i]) {
			t.Fatalf("backward gradParams[%d]: ref %x gemm %x", i, gpRef[i], gpGEMM[i])
		}
	}
	for i := range giRef {
		if math.Float64bits(giRef[i]) != math.Float64bits(giGEMM[i]) {
			t.Fatalf("backward gradIn[%d]: ref %x gemm %x", i, giRef[i], giGEMM[i])
		}
	}
}

func TestConvGEMMEquivalenceTable(t *testing.T) {
	for _, g := range convGeometries {
		t.Run(g.name, func(t *testing.T) {
			for seed := uint64(1); seed <= 5; seed++ {
				runConvEquiv(t, g.in, g.outC, g.k, g.pad, seed)
			}
		})
	}
}

// TestConvReLUFusionBitwise checks the fused conv2d+relu layer against the
// unfused pair, forward and backward.
func TestConvReLUFusionBitwise(t *testing.T) {
	in := Shape3{C: 2, H: 6, W: 6}
	conv := NewConv2D(in, 4, 3, 1)
	relu := NewReLU(conv.OutShape())
	fused := fuseConvReLU(conv, relu)
	if fused == nil {
		t.Fatal("conv+relu did not fuse")
	}
	if fused.ParamCount() != conv.ParamCount() {
		t.Fatalf("fused ParamCount %d, want %d", fused.ParamCount(), conv.ParamCount())
	}

	r := rng.New(99)
	params := make([]float64, conv.ParamCount())
	fused.Init(params, r)
	paramsRef := make([]float64, conv.ParamCount())
	conv.Init(paramsRef, rng.New(99))
	for i := range params {
		if params[i] != paramsRef[i] {
			t.Fatal("fused Init changed the parameter stream")
		}
	}

	x := make([]float64, in.Size())
	for i := range x {
		x[i] = r.Norm()
	}
	outSize := conv.OutShape().Size()
	scratch := make([]float64, conv.ScratchSize())

	pre := make([]float64, outSize)
	outRef := make([]float64, outSize)
	conv.Forward(params, x, pre, scratch)
	relu.Forward(nil, pre, outRef, nil)
	outFused := make([]float64, outSize)
	fused.Forward(params, x, outFused, scratch)
	for i := range outRef {
		if math.Float64bits(outRef[i]) != math.Float64bits(outFused[i]) {
			t.Fatalf("fused forward out[%d]: %x vs %x", i, outRef[i], outFused[i])
		}
	}

	gradOut := make([]float64, outSize)
	for i := range gradOut {
		gradOut[i] = r.Norm()
	}
	gradOutFused := make([]float64, outSize)
	copy(gradOutFused, gradOut)
	gpRef := make([]float64, conv.ParamCount())
	gpFused := make([]float64, conv.ParamCount())
	giRef := make([]float64, in.Size())
	giFused := make([]float64, in.Size())
	gradPre := make([]float64, outSize)
	relu.Backward(nil, pre, outRef, gradOut, nil, gradPre, nil)
	conv.Backward(params, x, pre, gradPre, gpRef, giRef, scratch)
	fused.Backward(params, x, outFused, gradOutFused, gpFused, giFused, scratch)
	for i := range gpRef {
		if math.Float64bits(gpRef[i]) != math.Float64bits(gpFused[i]) {
			t.Fatalf("fused gradParams[%d]: %x vs %x", i, gpRef[i], gpFused[i])
		}
	}
	for i := range giRef {
		if math.Float64bits(giRef[i]) != math.Float64bits(giFused[i]) {
			t.Fatalf("fused gradIn[%d]: %x vs %x", i, giRef[i], giFused[i])
		}
	}
}

// TestSequentialFusesZoo asserts that Sequential actually substitutes the
// fused layer for conv→relu pairs without disturbing the parameter layout.
func TestSequentialFusesZoo(t *testing.T) {
	in := Shape3{C: 1, H: 8, W: 8}
	conv := NewConv2D(in, 8, 3, 1)
	relu := NewReLU(conv.OutShape())
	pool := NewMaxPool2D(conv.OutShape())
	flat := NewFlatten(pool.OutShape())
	dense := NewDense(pool.OutShape().Size(), 4)
	net, err := Sequential(SoftmaxCrossEntropy{}, conv, relu, pool, flat, dense)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(net.layers); got != 4 {
		t.Fatalf("layer count after fusion = %d, want 4", got)
	}
	if net.layers[0].Name() != "conv2d+relu" {
		t.Fatalf("first layer = %s, want conv2d+relu", net.layers[0].Name())
	}
	want := conv.ParamCount() + dense.ParamCount()
	if net.Dim() != want {
		t.Fatalf("dim = %d, want %d", net.Dim(), want)
	}
}

// FuzzConvGEMMEquivalence lets the fuzzer drive the geometry: any valid
// configuration must produce bitwise-identical results on both paths.
func FuzzConvGEMMEquivalence(f *testing.F) {
	f.Add(1, 8, 8, 8, 3, 1, uint64(5))
	f.Add(8, 4, 4, 16, 3, 1, uint64(7))
	f.Add(2, 3, 3, 2, 3, 3, uint64(1))
	f.Add(1, 2, 2, 2, 3, 4, uint64(2))
	f.Add(4, 5, 5, 6, 1, 0, uint64(3))
	f.Fuzz(func(t *testing.T, inC, h, w, outC, k, pad int, seed uint64) {
		// Bound the geometry so a fuzzed input can't demand gigabytes.
		if inC < 1 || inC > 4 || h < 1 || h > 8 || w < 1 || w > 8 ||
			outC < 1 || outC > 4 || k < 1 || k > 5 || pad < 0 || pad > 5 {
			t.Skip()
		}
		c := NewConv2D(Shape3{C: inC, H: h, W: w}, outC, k, pad)
		if err := c.Validate(); err != nil {
			t.Skip()
		}
		runConvEquiv(t, Shape3{C: inC, H: h, W: w}, outC, k, pad, seed|1)
	})
}

// TestConvEquivalenceShapeNames guards against the table silently losing
// its degenerate corners in a refactor.
func TestConvEquivalenceShapeNames(t *testing.T) {
	need := map[string]bool{
		"pad-at-input-size": false, "pad-over-input-size": false,
		"one-by-one": false, "even-kernel": false, "single-pixel-out": false,
	}
	for _, g := range convGeometries {
		if _, ok := need[g.name]; ok {
			need[g.name] = true
		}
	}
	for name, seen := range need {
		if !seen {
			t.Errorf("equivalence table lost shape %s", name)
		}
	}
	// And every geometry must actually validate.
	for _, g := range convGeometries {
		if err := NewConv2D(g.in, g.outC, g.k, g.pad).Validate(); err != nil {
			t.Errorf("%s: %v", g.name, err)
		}
	}
}
