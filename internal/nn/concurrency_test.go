package nn

import (
	"testing"

	"hieradmo/internal/parallel"
	"hieradmo/internal/rng"
	"hieradmo/internal/tensor"
)

// concurrencyNet builds a conv→pool→dense stack so the concurrency tests
// cover the layers with the largest workspaces.
func concurrencyNet(t *testing.T) *Network {
	t.Helper()
	in := Shape3{C: 1, H: 8, W: 8}
	conv := NewConv2D(in, 2, 3, 1)
	pooled := Shape3{C: 2, H: 4, W: 4}
	net, err := Sequential(SoftmaxCrossEntropy{},
		conv,
		NewReLU(conv.OutShape()),
		NewMaxPool2D(conv.OutShape()),
		NewDense(pooled.Size(), 3),
	)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// TestConcurrentLossGradMatchesSequential exercises the sync.Pool workspace
// path that layer.go documents as concurrency-safe but nothing else uses
// concurrently: many goroutines call LossGrad on one shared Network, each
// with its own gradient vector, and every result must be bit-identical to
// the sequential computation. Run under -race (make race) this also proves
// the pooled workspaces never alias across callers.
func TestConcurrentLossGradMatchesSequential(t *testing.T) {
	net := concurrencyNet(t)
	params := net.Init(rng.New(7))

	const callers = 16
	inputs := make([][]float64, callers)
	labels := make([]int, callers)
	r := rng.New(11)
	for c := range inputs {
		inputs[c] = make([]float64, net.InputSize())
		for i := range inputs[c] {
			inputs[c][i] = r.Norm()
		}
		labels[c] = r.Intn(net.OutputSize())
	}

	wantLoss := make([]float64, callers)
	wantGrad := make([]tensor.Vector, callers)
	for c := range inputs {
		wantGrad[c] = tensor.NewVector(net.Dim())
		loss, err := net.LossGrad(params, inputs[c], labels[c], wantGrad[c])
		if err != nil {
			t.Fatal(err)
		}
		wantLoss[c] = loss
	}

	const rounds = 8
	for round := 0; round < rounds; round++ {
		gotLoss := make([]float64, callers)
		gotGrad := make([]tensor.Vector, callers)
		err := parallel.ForEach(callers, func(c int) error {
			gotGrad[c] = tensor.NewVector(net.Dim())
			loss, err := net.LossGrad(params, inputs[c], labels[c], gotGrad[c])
			if err != nil {
				return err
			}
			gotLoss[c] = loss
			return nil
		}, parallel.WithWorkers(callers))
		if err != nil {
			t.Fatal(err)
		}
		for c := range inputs {
			if gotLoss[c] != wantLoss[c] {
				t.Fatalf("round %d caller %d: loss %v != sequential %v", round, c, gotLoss[c], wantLoss[c])
			}
			for i := range gotGrad[c] {
				if gotGrad[c][i] != wantGrad[c][i] {
					t.Fatalf("round %d caller %d: grad[%d] %v != sequential %v",
						round, c, i, gotGrad[c][i], wantGrad[c][i])
				}
			}
		}
	}
}

// TestConcurrentForwardStable drives Forward from many goroutines; pooled
// workspaces must not leak one caller's activations into another's output.
func TestConcurrentForwardStable(t *testing.T) {
	net := concurrencyNet(t)
	params := net.Init(rng.New(9))

	const callers = 12
	inputs := make([][]float64, callers)
	r := rng.New(13)
	for c := range inputs {
		inputs[c] = make([]float64, net.InputSize())
		for i := range inputs[c] {
			inputs[c][i] = r.Norm()
		}
	}
	want := make([][]float64, callers)
	for c := range inputs {
		out, err := net.Forward(params, inputs[c])
		if err != nil {
			t.Fatal(err)
		}
		want[c] = out
	}

	err := parallel.ForEach(callers, func(c int) error {
		for rep := 0; rep < 16; rep++ {
			out, err := net.Forward(params, inputs[c])
			if err != nil {
				return err
			}
			for i := range out {
				if out[i] != want[c][i] {
					t.Errorf("caller %d rep %d: out[%d] = %v, want %v", c, rep, i, out[i], want[c][i])
					return nil
				}
			}
		}
		return nil
	}, parallel.WithWorkers(callers))
	if err != nil {
		t.Fatal(err)
	}
}
