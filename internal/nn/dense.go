package nn

import (
	"math"

	"hieradmo/internal/rng"
	"hieradmo/internal/tensor"
)

// Dense is a fully connected layer: out = W·in + b. Parameters are laid out
// as the row-major weight matrix (out×in) followed by the bias vector.
type Dense struct {
	in, out int
}

var _ Layer = (*Dense)(nil)

// NewDense returns a fully connected layer mapping in features to out
// features. The input may have any 3-D shape; it is treated as flat.
func NewDense(in, out int) *Dense {
	return &Dense{in: in, out: out}
}

// Name implements Layer.
func (d *Dense) Name() string { return "dense" }

// InShape implements Layer.
func (d *Dense) InShape() Shape3 { return Shape3{C: 1, H: 1, W: d.in} }

// OutShape implements Layer.
func (d *Dense) OutShape() Shape3 { return Shape3{C: 1, H: 1, W: d.out} }

// ParamCount implements Layer.
func (d *Dense) ParamCount() int { return d.out*d.in + d.out }

// Init implements Layer with He initialization (suited to the ReLU networks
// used here) and zero biases.
func (d *Dense) Init(params []float64, r *rng.RNG) {
	std := math.Sqrt(2.0 / float64(d.in))
	for i := 0; i < d.out*d.in; i++ {
		params[i] = std * r.Norm()
	}
	for i := d.out * d.in; i < len(params); i++ {
		params[i] = 0
	}
}

// denseZeroBias is the single-row zero bias for GEMM calls that compute a
// plain matrix-vector product.
var denseZeroBias = [1]float64{}

// Forward implements Layer: out = W·in + b as a flat-accumulation GEMM over
// the shared blocked kernel (the n = 1 column path — one dot product per
// output row, bitwise identical to the former hand-rolled loop).
func (d *Dense) Forward(params, in, out, _ []float64) {
	w := params[:d.out*d.in]
	b := params[d.out*d.in:]
	tensor.GEMMBias(out, w, in, b, d.out, 1, d.in, 0)
}

// Backward implements Layer through the shared kernels:
//
//	gb     += gradOut                    (plain accumulation)
//	gradIn  = Wᵀ·gradOut                 (GEMMBias, row vector × W, zero bias)
//	gW     += gradOut·inᵀ                (GEMMAddTransB with K = 1)
//
// Per destination element each kernel adds the same products in the same
// ascending order as the former interleaved loop; the loop's skip of
// zero-gradient rows is equivalent to adding the ±0 products the kernels
// include (see the contract note in internal/tensor/gemm.go), so the
// results are bitwise unchanged.
func (d *Dense) Backward(params, in, _, gradOut, gradParams, gradIn, _ []float64) {
	w := params[:d.out*d.in]
	gw := gradParams[:d.out*d.in]
	gb := gradParams[d.out*d.in:]
	for o, g := range gradOut {
		gb[o] += g
	}
	if gradIn != nil {
		tensor.GEMMBias(gradIn, gradOut, w, denseZeroBias[:], 1, d.in, d.out, 0)
	}
	tensor.GEMMAddTransB(gw, gradOut, in, d.out, d.in, 1)
}
