package nn

import (
	"math"

	"hieradmo/internal/rng"
)

// Dense is a fully connected layer: out = W·in + b. Parameters are laid out
// as the row-major weight matrix (out×in) followed by the bias vector.
type Dense struct {
	in, out int
}

var _ Layer = (*Dense)(nil)

// NewDense returns a fully connected layer mapping in features to out
// features. The input may have any 3-D shape; it is treated as flat.
func NewDense(in, out int) *Dense {
	return &Dense{in: in, out: out}
}

// Name implements Layer.
func (d *Dense) Name() string { return "dense" }

// InShape implements Layer.
func (d *Dense) InShape() Shape3 { return Shape3{C: 1, H: 1, W: d.in} }

// OutShape implements Layer.
func (d *Dense) OutShape() Shape3 { return Shape3{C: 1, H: 1, W: d.out} }

// ParamCount implements Layer.
func (d *Dense) ParamCount() int { return d.out*d.in + d.out }

// Init implements Layer with He initialization (suited to the ReLU networks
// used here) and zero biases.
func (d *Dense) Init(params []float64, r *rng.RNG) {
	std := math.Sqrt(2.0 / float64(d.in))
	for i := 0; i < d.out*d.in; i++ {
		params[i] = std * r.Norm()
	}
	for i := d.out * d.in; i < len(params); i++ {
		params[i] = 0
	}
}

// Forward implements Layer.
func (d *Dense) Forward(params, in, out []float64) {
	w := params[:d.out*d.in]
	b := params[d.out*d.in:]
	for o := 0; o < d.out; o++ {
		row := w[o*d.in : (o+1)*d.in]
		s := b[o]
		for i, x := range in {
			s += row[i] * x
		}
		out[o] = s
	}
}

// Backward implements Layer.
func (d *Dense) Backward(params, in, gradOut, gradParams, gradIn []float64) {
	w := params[:d.out*d.in]
	gw := gradParams[:d.out*d.in]
	gb := gradParams[d.out*d.in:]
	for i := range gradIn {
		gradIn[i] = 0
	}
	for o := 0; o < d.out; o++ {
		g := gradOut[o]
		gb[o] += g
		if g == 0 {
			continue
		}
		row := w[o*d.in : (o+1)*d.in]
		grow := gw[o*d.in : (o+1)*d.in]
		for i, x := range in {
			grow[i] += g * x
			gradIn[i] += g * row[i]
		}
	}
}
