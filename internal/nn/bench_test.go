package nn

import (
	"testing"

	"hieradmo/internal/rng"
	"hieradmo/internal/tensor"
)

// Micro-benchmarks for the training substrate's hot path: one forward pass
// and one loss-gradient (forward + backward) per architecture family.

func benchNet(b *testing.B, net *Network, err error) (*Network, tensor.Vector, []float64) {
	b.Helper()
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(1)
	params := net.Init(r)
	x := make([]float64, net.InputSize())
	for i := range x {
		x[i] = r.Norm()
	}
	return net, params, x
}

func benchForward(b *testing.B, net *Network, err error) {
	net, params, x := benchNet(b, net, err)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := net.Forward(params, x); err != nil {
			b.Fatal(err)
		}
	}
}

func benchLossGrad(b *testing.B, net *Network, err error) {
	net, params, x := benchNet(b, net, err)
	grad := tensor.NewVector(net.Dim())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		grad.Zero()
		if _, err := net.LossGrad(params, x, 0, grad); err != nil {
			b.Fatal(err)
		}
	}
}

func denseNet() (*Network, error) {
	return Sequential(SoftmaxCrossEntropy{},
		NewDense(196, 64),
		NewReLU(Shape3{C: 1, H: 1, W: 64}),
		NewDense(64, 10),
	)
}

func convNet() (*Network, error) {
	in := Shape3{C: 1, H: 14, W: 14}
	conv1 := NewConv2D(in, 8, 3, 1)
	relu1 := NewReLU(conv1.OutShape())
	pool1 := NewMaxPool2D(relu1.OutShape())
	conv2 := NewConv2D(pool1.OutShape(), 16, 3, 1)
	relu2 := NewReLU(conv2.OutShape())
	pool2 := NewMaxPool2D(relu2.OutShape())
	flat := NewFlatten(pool2.OutShape())
	return Sequential(SoftmaxCrossEntropy{},
		conv1, relu1, pool1, conv2, relu2, pool2, flat,
		NewDense(pool2.OutShape().Size(), 10),
	)
}

func residualNet() (*Network, error) {
	in := Shape3{C: 3, H: 16, W: 16}
	stem := NewConv2D(in, 8, 3, 1)
	relu := NewReLU(stem.OutShape())
	res := NewResidual(relu.OutShape())
	pool := NewMaxPool2D(res.OutShape())
	flat := NewFlatten(pool.OutShape())
	return Sequential(SoftmaxCrossEntropy{},
		stem, relu, res, pool, flat,
		NewDense(pool.OutShape().Size(), 20),
	)
}

func BenchmarkForwardDense(b *testing.B) {
	net, err := denseNet()
	benchForward(b, net, err)
}

func BenchmarkForwardConv(b *testing.B) {
	net, err := convNet()
	benchForward(b, net, err)
}

func BenchmarkForwardResidual(b *testing.B) {
	net, err := residualNet()
	benchForward(b, net, err)
}

func BenchmarkLossGradDense(b *testing.B) {
	net, err := denseNet()
	benchLossGrad(b, net, err)
}

func BenchmarkLossGradConv(b *testing.B) {
	net, err := convNet()
	benchLossGrad(b, net, err)
}

func BenchmarkLossGradResidual(b *testing.B) {
	net, err := residualNet()
	benchLossGrad(b, net, err)
}
