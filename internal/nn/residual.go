package nn

import (
	"sync"

	"hieradmo/internal/rng"
)

// Residual is a ResNet-style basic block over a fixed channel count:
//
//	out = ReLU( conv2(ReLU(conv1(in))) + in )
//
// with both convolutions 3×3, padding 1, preserving the activation shape.
// Parameters are conv1's block followed by conv2's block. Intermediate
// activations are recomputed in Backward from the saved input so the layer
// stays stateless; scratch buffers come from an internal pool to keep the
// hot path allocation-free while remaining re-entrant.
type Residual struct {
	shape Shape3
	conv1 *Conv2D
	conv2 *Conv2D
	pool  sync.Pool // *residualScratch
}

type residualScratch struct {
	a1, r1, a2, gs, g1 []float64
}

var _ Layer = (*Residual)(nil)

// NewResidual returns a basic residual block over activations of shape sh.
func NewResidual(sh Shape3) *Residual {
	l := &Residual{
		shape: sh,
		conv1: NewConv2D(sh, sh.C, 3, 1),
		conv2: NewConv2D(sh, sh.C, 3, 1),
	}
	size := sh.Size()
	l.pool.New = func() any {
		return &residualScratch{
			a1: make([]float64, size),
			r1: make([]float64, size),
			a2: make([]float64, size),
			gs: make([]float64, size),
			g1: make([]float64, size),
		}
	}
	return l
}

// Name implements Layer.
func (l *Residual) Name() string { return "residual" }

// InShape implements Layer.
func (l *Residual) InShape() Shape3 { return l.shape }

// OutShape implements Layer.
func (l *Residual) OutShape() Shape3 { return l.shape }

// ParamCount implements Layer.
func (l *Residual) ParamCount() int {
	return l.conv1.ParamCount() + l.conv2.ParamCount()
}

// Init implements Layer.
func (l *Residual) Init(params []float64, r *rng.RNG) {
	n1 := l.conv1.ParamCount()
	l.conv1.Init(params[:n1], r)
	l.conv2.Init(params[n1:], r)
}

func (l *Residual) scratch() *residualScratch {
	s, ok := l.pool.Get().(*residualScratch)
	if !ok {
		s = l.pool.New().(*residualScratch)
	}
	return s
}

// Forward implements Layer.
func (l *Residual) Forward(params, in, out []float64) {
	n1 := l.conv1.ParamCount()
	s := l.scratch()
	defer l.pool.Put(s)
	l.conv1.Forward(params[:n1], in, s.a1)
	for i, x := range s.a1 {
		if x > 0 {
			s.r1[i] = x
		} else {
			s.r1[i] = 0
		}
	}
	l.conv2.Forward(params[n1:], s.r1, out)
	for i := range out {
		sum := out[i] + in[i]
		if sum > 0 {
			out[i] = sum
		} else {
			out[i] = 0
		}
	}
}

// Backward implements Layer.
func (l *Residual) Backward(params, in, gradOut, gradParams, gradIn []float64) {
	n1 := l.conv1.ParamCount()
	s := l.scratch()
	defer l.pool.Put(s)

	l.conv1.Forward(params[:n1], in, s.a1)
	for i, x := range s.a1 {
		if x > 0 {
			s.r1[i] = x
		} else {
			s.r1[i] = 0
		}
	}
	l.conv2.Forward(params[n1:], s.r1, s.a2)

	// Final ReLU gate on the skip sum a2 + in.
	for i := range s.gs {
		if s.a2[i]+in[i] > 0 {
			s.gs[i] = gradOut[i]
		} else {
			s.gs[i] = 0
		}
	}

	// Branch path: conv2, inner ReLU gate, conv1.
	l.conv2.Backward(params[n1:], s.r1, s.gs, gradParams[n1:], s.g1)
	for i := range s.g1 {
		if s.a1[i] <= 0 {
			s.g1[i] = 0
		}
	}
	l.conv1.Backward(params[:n1], in, s.g1, gradParams[:n1], gradIn)

	// Skip path adds gs directly to the input gradient.
	for i := range gradIn {
		gradIn[i] += s.gs[i]
	}
}
