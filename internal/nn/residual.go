package nn

import "hieradmo/internal/rng"

// Residual is a ResNet-style basic block over a fixed channel count:
//
//	out = ReLU( conv2(ReLU(conv1(in))) + in )
//
// with both convolutions 3×3, padding 1, preserving the activation shape.
// Parameters are conv1's block followed by conv2's block. All working
// storage comes from the caller's scratch region (ScratchSize), so the
// layer owns no pool of its own and the whole network shares one workspace
// per goroutine.
//
// Backward recomputes nothing: the branch activation r1 = ReLU(conv1(in))
// and both convolutions' im2col patches survive in scratch from the matching
// Forward call (see the persistence contract in layer.go), and the saved
// output gates both ReLUs — out > 0 iff the skip sum was > 0, and r1 > 0 iff
// conv1's pre-activation was > 0 for finite values. Bitwise identical to the
// original double-recompute implementation.
type Residual struct {
	shape Shape3
	conv1 *Conv2D
	conv2 *Conv2D
}

var _ Layer = (*Residual)(nil)
var _ scratchLayer = (*Residual)(nil)

// NewResidual returns a basic residual block over activations of shape sh.
func NewResidual(sh Shape3) *Residual {
	return &Residual{
		shape: sh,
		conv1: NewConv2D(sh, sh.C, 3, 1),
		conv2: NewConv2D(sh, sh.C, 3, 1),
	}
}

// Name implements Layer.
func (l *Residual) Name() string { return "residual" }

// InShape implements Layer.
func (l *Residual) InShape() Shape3 { return l.shape }

// OutShape implements Layer.
func (l *Residual) OutShape() Shape3 { return l.shape }

// ParamCount implements Layer.
func (l *Residual) ParamCount() int {
	return l.conv1.ParamCount() + l.conv2.ParamCount()
}

// Init implements Layer.
func (l *Residual) Init(params []float64, r *rng.RNG) {
	n1 := l.conv1.ParamCount()
	l.conv1.Init(params[:n1], r)
	l.conv2.Init(params[n1:], r)
}

// ScratchSize implements scratchLayer: three activation-sized planes (the
// branch activation, the gated output gradient, the branch gradient) plus a
// private scratch region per convolution, so both patch matrices survive
// Forward for Backward to reuse.
func (l *Residual) ScratchSize() int {
	return 3*l.shape.Size() + l.conv1.ScratchSize() + l.conv2.ScratchSize()
}

// Forward implements Layer.
func (l *Residual) Forward(params, in, out, scratch []float64) {
	n1 := l.conv1.ParamCount()
	size := l.shape.Size()
	r1 := scratch[:size]
	cs1 := scratch[3*size : 3*size+l.conv1.ScratchSize()]
	cs2 := scratch[3*size+l.conv1.ScratchSize():]
	l.conv1.Forward(params[:n1], in, r1, cs1)
	for i, x := range r1 {
		if !(x > 0) {
			r1[i] = 0
		}
	}
	l.conv2.Forward(params[n1:], r1, out, cs2)
	for i := range out {
		sum := out[i] + in[i]
		if sum > 0 {
			out[i] = sum
		} else {
			out[i] = 0
		}
	}
}

// Backward implements Layer. r1 (post-ReLU) still sits in scratch[:size] from
// Forward, cs1 holds conv1's patch of in, and cs2 holds conv2's patch of r1 —
// nothing is recomputed.
func (l *Residual) Backward(params, in, out, gradOut, gradParams, gradIn, scratch []float64) {
	n1 := l.conv1.ParamCount()
	size := l.shape.Size()
	r1 := scratch[:size]
	gs := scratch[size : 2*size]
	g1 := scratch[2*size : 3*size]
	cs1 := scratch[3*size : 3*size+l.conv1.ScratchSize()]
	cs2 := scratch[3*size+l.conv1.ScratchSize():]

	// Final ReLU gate off the saved output: out > 0 iff a2 + in > 0.
	for i := range gs {
		if out[i] > 0 {
			gs[i] = gradOut[i]
		} else {
			gs[i] = 0
		}
	}

	// Branch path: conv2, inner ReLU gate (r1 > 0 iff a1 > 0), conv1.
	l.conv2.Backward(params[n1:], r1, nil, gs, gradParams[n1:], g1, cs2)
	for i := range g1 {
		if !(r1[i] > 0) {
			g1[i] = 0
		}
	}
	l.conv1.Backward(params[:n1], in, nil, g1, gradParams[:n1], gradIn, cs1)

	// Skip path adds gs directly to the input gradient.
	if gradIn != nil {
		for i := range gradIn {
			gradIn[i] += gs[i]
		}
	}
}
