package nn

import (
	"errors"
	"math"
	"testing"

	"hieradmo/internal/rng"
	"hieradmo/internal/tensor"
)

func smallNet(t *testing.T) *Network {
	t.Helper()
	net, err := Sequential(SoftmaxCrossEntropy{},
		NewDense(4, 6),
		NewReLU(Shape3{C: 1, H: 1, W: 6}),
		NewDense(6, 3),
	)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestSequentialValidation(t *testing.T) {
	if _, err := Sequential(SoftmaxCrossEntropy{}); err == nil {
		t.Error("accepted empty layer list")
	}
	if _, err := Sequential(nil, NewDense(2, 2)); err == nil {
		t.Error("accepted nil loss")
	}
	if _, err := Sequential(SoftmaxCrossEntropy{}, NewDense(4, 6), NewDense(5, 3)); err == nil {
		t.Error("accepted mismatched layer shapes")
	}
	bad := NewConv2D(Shape3{C: 1, H: 2, W: 2}, 1, 5, 0) // output would be negative
	if _, err := Sequential(SoftmaxCrossEntropy{}, bad); err == nil {
		t.Error("accepted conv with non-positive output")
	}
}

func TestDimAndShapes(t *testing.T) {
	net := smallNet(t)
	wantDim := (6*4 + 6) + (3*6 + 3)
	if net.Dim() != wantDim {
		t.Errorf("Dim = %d, want %d", net.Dim(), wantDim)
	}
	if net.InputSize() != 4 || net.OutputSize() != 3 {
		t.Errorf("io sizes = %d/%d", net.InputSize(), net.OutputSize())
	}
}

func TestInitDeterministic(t *testing.T) {
	net := smallNet(t)
	a := net.Init(rng.New(5))
	b := net.Init(rng.New(5))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("init diverges at %d", i)
		}
	}
}

func TestForwardErrors(t *testing.T) {
	net := smallNet(t)
	params := net.Init(rng.New(1))
	if _, err := net.Forward(params[:3], []float64{1, 2, 3, 4}); !errors.Is(err, tensor.ErrDimMismatch) {
		t.Errorf("short params err = %v", err)
	}
	if _, err := net.Forward(params, []float64{1}); !errors.Is(err, tensor.ErrDimMismatch) {
		t.Errorf("short input err = %v", err)
	}
}

func TestLossGradErrors(t *testing.T) {
	net := smallNet(t)
	params := net.Init(rng.New(1))
	grad := tensor.NewVector(net.Dim())
	x := []float64{1, 2, 3, 4}
	if _, err := net.LossGrad(params, x, -1, grad); err == nil {
		t.Error("accepted negative label")
	}
	if _, err := net.LossGrad(params, x, 3, grad); err == nil {
		t.Error("accepted out-of-range label")
	}
	if _, err := net.LossGrad(params, x[:2], 0, grad); !errors.Is(err, tensor.ErrDimMismatch) {
		t.Errorf("short input err = %v", err)
	}
}

func TestPredictConsistentWithForward(t *testing.T) {
	net := smallNet(t)
	params := net.Init(rng.New(2))
	x := []float64{0.5, -1, 2, 0.25}
	out, err := net.Forward(params, x)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := net.Predict(params, x)
	if err != nil {
		t.Fatal(err)
	}
	if pred != tensor.Vector(out).ArgMax() {
		t.Errorf("Predict = %d, argmax = %d", pred, tensor.Vector(out).ArgMax())
	}
}

func TestSoftmaxCrossEntropyProperties(t *testing.T) {
	loss := SoftmaxCrossEntropy{}
	out := []float64{2, 1, -1}
	grad := make([]float64, 3)
	l := loss.LossGrad(out, 0, grad)
	if l <= 0 {
		t.Errorf("loss = %v, want > 0", l)
	}
	// Softmax-CE gradient sums to zero (probabilities sum to 1, minus the
	// one-hot which also sums to 1).
	sum := grad[0] + grad[1] + grad[2]
	if math.Abs(sum) > 1e-12 {
		t.Errorf("gradient sum = %v, want 0", sum)
	}
	// Gradient at the true class is negative (we want to raise that logit).
	if grad[0] >= 0 {
		t.Errorf("grad at true class = %v, want < 0", grad[0])
	}
}

func TestSoftmaxNumericalStability(t *testing.T) {
	loss := SoftmaxCrossEntropy{}
	out := []float64{1e4, -1e4, 0}
	grad := make([]float64, 3)
	l := loss.LossGrad(out, 1, grad)
	if math.IsNaN(l) || math.IsInf(l, 0) {
		t.Errorf("loss = %v with extreme logits", l)
	}
	for i, g := range grad {
		if math.IsNaN(g) {
			t.Errorf("grad[%d] is NaN", i)
		}
	}
}

func TestMSEOneHot(t *testing.T) {
	loss := MSEOneHot{}
	out := []float64{1, 0, 0}
	grad := make([]float64, 3)
	if l := loss.LossGrad(out, 0, grad); l != 0 {
		t.Errorf("perfect prediction loss = %v, want 0", l)
	}
	out = []float64{0, 0, 0}
	if l := loss.LossGrad(out, 1, grad); math.Abs(l-0.5) > 1e-12 {
		t.Errorf("loss = %v, want 0.5", l)
	}
	if grad[1] != -1 {
		t.Errorf("grad at target = %v, want -1", grad[1])
	}
}

func TestSGDLearnsXORishTask(t *testing.T) {
	// Integration check: SGD on the two-layer net separates two Gaussian
	// blobs. Verifies forward/backward wiring end to end.
	net, err := Sequential(SoftmaxCrossEntropy{},
		NewDense(2, 8),
		NewReLU(Shape3{C: 1, H: 1, W: 8}),
		NewDense(8, 2),
	)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(7)
	params := net.Init(r)
	grad := tensor.NewVector(net.Dim())

	sample := func() ([]float64, int) {
		label := r.Intn(2)
		c := 1.5
		if label == 0 {
			c = -1.5
		}
		return []float64{c + 0.3*r.Norm(), c + 0.3*r.Norm()}, label
	}
	var lastLoss float64
	for step := 0; step < 400; step++ {
		grad.Zero()
		var total float64
		for b := 0; b < 8; b++ {
			x, y := sample()
			l, err := net.LossGrad(params, x, y, grad)
			if err != nil {
				t.Fatal(err)
			}
			total += l
		}
		grad.Scale(1.0 / 8)
		if err := params.AXPY(-0.1, grad); err != nil {
			t.Fatal(err)
		}
		lastLoss = total / 8
	}
	if lastLoss > 0.1 {
		t.Errorf("final loss %v, want < 0.1 (training failed)", lastLoss)
	}
	correct := 0
	for i := 0; i < 100; i++ {
		x, y := sample()
		pred, err := net.Predict(params, x)
		if err != nil {
			t.Fatal(err)
		}
		if pred == y {
			correct++
		}
	}
	if correct < 95 {
		t.Errorf("accuracy %d/100, want >= 95", correct)
	}
}

func TestLayerMetadata(t *testing.T) {
	in := Shape3{C: 2, H: 6, W: 6}
	tests := []struct {
		layer     Layer
		wantName  string
		wantOut   int
		wantParam int
	}{
		{layer: NewDense(4, 3), wantName: "dense", wantOut: 3, wantParam: 15},
		{layer: NewConv2D(in, 4, 3, 1), wantName: "conv2d", wantOut: 4 * 6 * 6, wantParam: 4*2*9 + 4},
		{layer: NewMaxPool2D(in), wantName: "maxpool2d", wantOut: 2 * 3 * 3, wantParam: 0},
		{layer: NewReLU(in), wantName: "relu", wantOut: in.Size(), wantParam: 0},
		{layer: NewFlatten(in), wantName: "flatten", wantOut: in.Size(), wantParam: 0},
		{layer: NewResidual(in), wantName: "residual", wantOut: in.Size(), wantParam: 2 * (2*2*9 + 2)},
	}
	for _, tt := range tests {
		t.Run(tt.wantName, func(t *testing.T) {
			if got := tt.layer.Name(); got != tt.wantName {
				t.Errorf("Name = %q, want %q", got, tt.wantName)
			}
			if got := tt.layer.OutShape().Size(); got != tt.wantOut {
				t.Errorf("OutShape size = %d, want %d", got, tt.wantOut)
			}
			if got := tt.layer.ParamCount(); got != tt.wantParam {
				t.Errorf("ParamCount = %d, want %d", got, tt.wantParam)
			}
		})
	}
}

func TestConcurrentForward(t *testing.T) {
	// The workspace pool must make concurrent evaluation safe.
	net := smallNet(t)
	params := net.Init(rng.New(3))
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(seed uint64) {
			r := rng.New(seed)
			for i := 0; i < 200; i++ {
				x := []float64{r.Norm(), r.Norm(), r.Norm(), r.Norm()}
				if _, err := net.Forward(params, x); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(uint64(g))
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// newTestRNG gives property tests a shared helper for seeded generators.
func newTestRNG(seed uint64) *rng.RNG { return rng.New(seed) }
