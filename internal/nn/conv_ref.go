package nn

// Reference implementation of Conv2D: the original six-deep loop nest with
// explicit bounds branches. It is retained verbatim as the bit-exactness
// oracle for the im2col/GEMM production path — conv_equiv_test.go asserts
// the two produce identical bits across a table of geometries and under
// fuzzing. Never call these from production code; they are the spec, not
// the kernel.

// forwardRef computes out = conv(params, in) with the naive loops.
func (c *Conv2D) forwardRef(params, in, out []float64) {
	outSh := c.OutShape()
	nw := c.outC * c.in.C * c.k * c.k
	w, b := params[:nw], params[nw:]
	planeIn := c.in.H * c.in.W
	planeOut := outSh.H * outSh.W
	for oc := 0; oc < c.outC; oc++ {
		bias := b[oc]
		outPlane := out[oc*planeOut : (oc+1)*planeOut]
		for i := range outPlane {
			outPlane[i] = bias
		}
		for ic := 0; ic < c.in.C; ic++ {
			kernel := w[(oc*c.in.C+ic)*c.k*c.k : (oc*c.in.C+ic+1)*c.k*c.k]
			inPlane := in[ic*planeIn : (ic+1)*planeIn]
			for oy := 0; oy < outSh.H; oy++ {
				for ox := 0; ox < outSh.W; ox++ {
					var s float64
					for ky := 0; ky < c.k; ky++ {
						iy := oy + ky - c.pad
						if iy < 0 || iy >= c.in.H {
							continue
						}
						rowIn := inPlane[iy*c.in.W:]
						rowK := kernel[ky*c.k:]
						for kx := 0; kx < c.k; kx++ {
							ix := ox + kx - c.pad
							if ix < 0 || ix >= c.in.W {
								continue
							}
							s += rowK[kx] * rowIn[ix]
						}
					}
					outPlane[oy*outSh.W+ox] += s
				}
			}
		}
	}
}

// backwardRef accumulates gradParams and overwrites gradIn with the naive
// loops.
func (c *Conv2D) backwardRef(params, in, gradOut, gradParams, gradIn []float64) {
	outSh := c.OutShape()
	nw := c.outC * c.in.C * c.k * c.k
	w := params[:nw]
	gw, gb := gradParams[:nw], gradParams[nw:]
	planeIn := c.in.H * c.in.W
	planeOut := outSh.H * outSh.W
	for i := range gradIn {
		gradIn[i] = 0
	}
	for oc := 0; oc < c.outC; oc++ {
		gOutPlane := gradOut[oc*planeOut : (oc+1)*planeOut]
		for _, g := range gOutPlane {
			gb[oc] += g
		}
		for ic := 0; ic < c.in.C; ic++ {
			kernel := w[(oc*c.in.C+ic)*c.k*c.k : (oc*c.in.C+ic+1)*c.k*c.k]
			gKernel := gw[(oc*c.in.C+ic)*c.k*c.k : (oc*c.in.C+ic+1)*c.k*c.k]
			inPlane := in[ic*planeIn : (ic+1)*planeIn]
			gInPlane := gradIn[ic*planeIn : (ic+1)*planeIn]
			for oy := 0; oy < outSh.H; oy++ {
				for ox := 0; ox < outSh.W; ox++ {
					g := gOutPlane[oy*outSh.W+ox]
					if g == 0 {
						continue
					}
					for ky := 0; ky < c.k; ky++ {
						iy := oy + ky - c.pad
						if iy < 0 || iy >= c.in.H {
							continue
						}
						for kx := 0; kx < c.k; kx++ {
							ix := ox + kx - c.pad
							if ix < 0 || ix >= c.in.W {
								continue
							}
							idx := iy*c.in.W + ix
							gKernel[ky*c.k+kx] += g * inPlane[idx]
							gInPlane[idx] += g * kernel[ky*c.k+kx]
						}
					}
				}
			}
		}
	}
}
