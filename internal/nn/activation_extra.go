package nn

import (
	"math"

	"hieradmo/internal/rng"
)

// Sigmoid is an element-wise logistic activation σ(x) = 1/(1+e^{-x}).
type Sigmoid struct {
	shape Shape3
}

var _ Layer = (*Sigmoid)(nil)

// NewSigmoid returns a sigmoid over activations of shape sh.
func NewSigmoid(sh Shape3) *Sigmoid {
	return &Sigmoid{shape: sh}
}

// Name implements Layer.
func (l *Sigmoid) Name() string { return "sigmoid" }

// InShape implements Layer.
func (l *Sigmoid) InShape() Shape3 { return l.shape }

// OutShape implements Layer.
func (l *Sigmoid) OutShape() Shape3 { return l.shape }

// ParamCount implements Layer.
func (l *Sigmoid) ParamCount() int { return 0 }

// Init implements Layer (no parameters).
func (l *Sigmoid) Init(params []float64, r *rng.RNG) {}

// Forward implements Layer.
func (l *Sigmoid) Forward(params, in, out, _ []float64) {
	for i, x := range in {
		out[i] = 1 / (1 + math.Exp(-x))
	}
}

// Backward implements Layer. σ'(x) = σ(x)(1−σ(x)), recomputed from the
// saved input.
func (l *Sigmoid) Backward(params, in, _, gradOut, gradParams, gradIn, _ []float64) {
	if gradIn == nil {
		return
	}
	for i, x := range in {
		s := 1 / (1 + math.Exp(-x))
		gradIn[i] = gradOut[i] * s * (1 - s)
	}
}

// Tanh is an element-wise hyperbolic-tangent activation.
type Tanh struct {
	shape Shape3
}

var _ Layer = (*Tanh)(nil)

// NewTanh returns a tanh over activations of shape sh.
func NewTanh(sh Shape3) *Tanh {
	return &Tanh{shape: sh}
}

// Name implements Layer.
func (l *Tanh) Name() string { return "tanh" }

// InShape implements Layer.
func (l *Tanh) InShape() Shape3 { return l.shape }

// OutShape implements Layer.
func (l *Tanh) OutShape() Shape3 { return l.shape }

// ParamCount implements Layer.
func (l *Tanh) ParamCount() int { return 0 }

// Init implements Layer (no parameters).
func (l *Tanh) Init(params []float64, r *rng.RNG) {}

// Forward implements Layer.
func (l *Tanh) Forward(params, in, out, _ []float64) {
	for i, x := range in {
		out[i] = math.Tanh(x)
	}
}

// Backward implements Layer. tanh'(x) = 1 − tanh²(x).
func (l *Tanh) Backward(params, in, _, gradOut, gradParams, gradIn, _ []float64) {
	if gradIn == nil {
		return
	}
	for i, x := range in {
		th := math.Tanh(x)
		gradIn[i] = gradOut[i] * (1 - th*th)
	}
}

// AvgPool2D is a 2×2 average pooling layer with stride 2; odd trailing rows
// or columns are dropped (floor semantics, matching MaxPool2D).
type AvgPool2D struct {
	in Shape3
}

var _ Layer = (*AvgPool2D)(nil)

// NewAvgPool2D returns a 2×2/stride-2 average pool over inputs of shape in.
func NewAvgPool2D(in Shape3) *AvgPool2D {
	return &AvgPool2D{in: in}
}

// Name implements Layer.
func (p *AvgPool2D) Name() string { return "avgpool2d" }

// InShape implements Layer.
func (p *AvgPool2D) InShape() Shape3 { return p.in }

// OutShape implements Layer.
func (p *AvgPool2D) OutShape() Shape3 {
	return Shape3{C: p.in.C, H: p.in.H / 2, W: p.in.W / 2}
}

// ParamCount implements Layer.
func (p *AvgPool2D) ParamCount() int { return 0 }

// Init implements Layer (no parameters).
func (p *AvgPool2D) Init(params []float64, r *rng.RNG) {}

// Forward implements Layer.
func (p *AvgPool2D) Forward(params, in, out, _ []float64) {
	outSh := p.OutShape()
	planeIn := p.in.H * p.in.W
	planeOut := outSh.H * outSh.W
	for c := 0; c < p.in.C; c++ {
		inPlane := in[c*planeIn : (c+1)*planeIn]
		outPlane := out[c*planeOut : (c+1)*planeOut]
		for oy := 0; oy < outSh.H; oy++ {
			for ox := 0; ox < outSh.W; ox++ {
				iy, ix := 2*oy, 2*ox
				sum := inPlane[iy*p.in.W+ix] + inPlane[iy*p.in.W+ix+1] +
					inPlane[(iy+1)*p.in.W+ix] + inPlane[(iy+1)*p.in.W+ix+1]
				outPlane[oy*outSh.W+ox] = sum / 4
			}
		}
	}
}

// Backward implements Layer: each input in a pooled window receives a
// quarter of the output gradient.
func (p *AvgPool2D) Backward(params, in, _, gradOut, gradParams, gradIn, _ []float64) {
	if gradIn == nil {
		return
	}
	outSh := p.OutShape()
	planeIn := p.in.H * p.in.W
	planeOut := outSh.H * outSh.W
	for i := range gradIn {
		gradIn[i] = 0
	}
	for c := 0; c < p.in.C; c++ {
		gInPlane := gradIn[c*planeIn : (c+1)*planeIn]
		gOutPlane := gradOut[c*planeOut : (c+1)*planeOut]
		for oy := 0; oy < outSh.H; oy++ {
			for ox := 0; ox < outSh.W; ox++ {
				g := gOutPlane[oy*outSh.W+ox] / 4
				iy, ix := 2*oy, 2*ox
				gInPlane[iy*p.in.W+ix] += g
				gInPlane[iy*p.in.W+ix+1] += g
				gInPlane[(iy+1)*p.in.W+ix] += g
				gInPlane[(iy+1)*p.in.W+ix+1] += g
			}
		}
	}
}

// GlobalAvgPool averages each channel plane to a single value, the modern
// replacement for large dense classifier heads.
type GlobalAvgPool struct {
	in Shape3
}

var _ Layer = (*GlobalAvgPool)(nil)

// NewGlobalAvgPool returns a global average pool over inputs of shape in.
func NewGlobalAvgPool(in Shape3) *GlobalAvgPool {
	return &GlobalAvgPool{in: in}
}

// Name implements Layer.
func (p *GlobalAvgPool) Name() string { return "globalavgpool" }

// InShape implements Layer.
func (p *GlobalAvgPool) InShape() Shape3 { return p.in }

// OutShape implements Layer.
func (p *GlobalAvgPool) OutShape() Shape3 { return Shape3{C: 1, H: 1, W: p.in.C} }

// ParamCount implements Layer.
func (p *GlobalAvgPool) ParamCount() int { return 0 }

// Init implements Layer (no parameters).
func (p *GlobalAvgPool) Init(params []float64, r *rng.RNG) {}

// Forward implements Layer.
func (p *GlobalAvgPool) Forward(params, in, out, _ []float64) {
	plane := p.in.H * p.in.W
	inv := 1 / float64(plane)
	for c := 0; c < p.in.C; c++ {
		var sum float64
		for _, v := range in[c*plane : (c+1)*plane] {
			sum += v
		}
		out[c] = sum * inv
	}
}

// Backward implements Layer.
func (p *GlobalAvgPool) Backward(params, in, _, gradOut, gradParams, gradIn, _ []float64) {
	if gradIn == nil {
		return
	}
	plane := p.in.H * p.in.W
	inv := 1 / float64(plane)
	for c := 0; c < p.in.C; c++ {
		g := gradOut[c] * inv
		gPlane := gradIn[c*plane : (c+1)*plane]
		for i := range gPlane {
			gPlane[i] = g
		}
	}
}
