// Package topology describes an N-tier aggregation tree for the cluster
// runtime: a chain of named levels from the root aggregator down to the
// training leaves, each with its own synchronization period τℓ, aggregation
// rule, and momentum configuration.
//
// The text form is root-first, slash-separated:
//
//	cloud:tau=20/region:tau=5,agg=median/edge:tau=1/worker*8
//
// Each level is `name[*fanout][:attr,...]`. Fanout is the number of nodes
// per parent (default 1; the root is always a single node and takes no
// fanout). Aggregating levels (all but the last) require `tau=<iterations>`;
// the last level is the training tier and always runs with an implicit τ of
// one iteration. Remaining attributes: `agg=<rule>` selects the level's
// robust aggregation rule (mean|median|trimmed(f)|clip(f)|cosine(f)),
// `gamma=<float>` sets a fixed momentum factor γℓ, and `adapt=<bool>`
// toggles the adaptive-γℓ rule — the latter two only at the leaf-parent
// level, the only tier that receives the gradient and momentum accumulators
// the adaptation signals need.
//
// The canonical String form feeds checkpoint fingerprints, so equal
// topologies must render equally; Parse(t.String()) round-trips exactly.
package topology

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"hieradmo/internal/robust"
)

// Bounds reject pathological specs before any per-node allocation happens
// (the parser is fuzzed: every input must yield a value or a wrapped error
// without an allocation blowup).
const (
	// MaxDepth bounds the number of levels, training tier included.
	MaxDepth = 8
	// MaxFanout bounds any single level's per-parent fanout.
	MaxFanout = 4096
	// MaxNodes bounds the total node count of the whole tree.
	MaxNodes = 65536
	// maxNameLen bounds a level name.
	maxNameLen = 16
)

// Typed parse/validation errors, matched by callers with errors.Is.
var (
	// ErrSyntax is a malformed spec string.
	ErrSyntax = errors.New("topology: syntax error")
	// ErrBounds is a structurally valid spec exceeding MaxDepth, MaxFanout,
	// or MaxNodes.
	ErrBounds = errors.New("topology: bounds exceeded")
	// ErrMisaligned is a τℓ tiling violation: every child level's sync
	// period must divide its parent's, so child rounds tile parent periods
	// exactly.
	ErrMisaligned = errors.New("topology: child sync period must tile parent period")
	// ErrAttr is an attribute that is unknown, malformed, or not allowed at
	// its level.
	ErrAttr = errors.New("topology: invalid attribute")
)

// Level is one tier of the tree, root first.
type Level struct {
	// Name labels the level; node IDs are "<name>-<index>". Lowercase
	// letter followed by lowercase letters or digits, unique per topology.
	Name string
	// Tau is the level's synchronization period in worker iterations: the
	// level aggregates its children every Tau iterations. The last level
	// (the training tier) always has Tau == 1.
	Tau int
	// Fanout is the number of nodes of this level per parent node; the
	// root's is fixed at 1.
	Fanout int
	// Agg is the aggregation rule applied to child reports (zero value =
	// plain weighted mean, the bit-exact undefended path).
	Agg robust.Spec
	// Gamma is the fixed momentum factor γℓ; meaningful only when HasGamma.
	Gamma float64
	// HasGamma records an explicit gamma attribute. Without one the
	// leaf-parent level uses the run config's GammaEdge and every other
	// aggregating level uses 0 (plain averaging).
	HasGamma bool
	// Adapt toggles adaptive γℓ; meaningful only when HasAdapt. Without an
	// explicit attribute the leaf-parent level follows the run options.
	Adapt    bool
	HasAdapt bool
}

// Topology is a validated aggregation tree: Levels[0] is the root,
// Levels[len-1] the training tier.
type Topology struct {
	Levels []Level
}

// Depth returns the number of levels, training tier included.
func (t *Topology) Depth() int { return len(t.Levels) }

// Width returns the number of nodes at level i (the product of fanouts
// down to and including i).
func (t *Topology) Width(i int) int {
	n := 1
	for j := 1; j <= i; j++ {
		n *= t.Levels[j].Fanout
	}
	return n
}

// NumLeaves returns the training-tier node count.
func (t *Topology) NumLeaves() int { return t.Width(t.Depth() - 1) }

// NumNodes returns the total node count over all levels.
func (t *Topology) NumNodes() int {
	total := 0
	for i := range t.Levels {
		total += t.Width(i)
	}
	return total
}

// LeafParent returns the index of the level whose children are the training
// leaves.
func (t *Topology) LeafParent() int { return t.Depth() - 2 }

// NodeID returns the transport ID of node idx at level i.
func (t *Topology) NodeID(i, idx int) string {
	return t.Levels[i].Name + "-" + strconv.Itoa(idx)
}

// ParseNodeID resolves a transport ID minted by NodeID back to its (level,
// index) coordinates.
func (t *Topology) ParseNodeID(id string) (level, idx int, err error) {
	cut := strings.LastIndexByte(id, '-')
	if cut <= 0 {
		return 0, 0, fmt.Errorf("topology: malformed node id %q", id)
	}
	name, num := id[:cut], id[cut+1:]
	idx, err = strconv.Atoi(num)
	if err != nil || idx < 0 {
		return 0, 0, fmt.Errorf("topology: malformed node id %q", id)
	}
	for i := range t.Levels {
		if t.Levels[i].Name == name {
			if idx >= t.Width(i) {
				return 0, 0, fmt.Errorf("topology: node id %q outside level %q width %d",
					id, name, t.Width(i))
			}
			return i, idx, nil
		}
	}
	return 0, 0, fmt.Errorf("topology: node id %q names no level", id)
}

// SyncsPerParent returns how many of level i's aggregation rounds fit in one
// of its parent's periods (τ_{i-1}/τ_i); the tree analogue of π.
func (t *Topology) SyncsPerParent(i int) int {
	return t.Levels[i-1].Tau / t.Levels[i].Tau
}

// String renders the canonical text form (root first). It feeds checkpoint
// fingerprints: equal topologies render equally and Parse round-trips it.
func (t *Topology) String() string {
	var b strings.Builder
	for i, lv := range t.Levels {
		if i > 0 {
			b.WriteByte('/')
		}
		b.WriteString(lv.Name)
		if lv.Fanout > 1 {
			b.WriteByte('*')
			b.WriteString(strconv.Itoa(lv.Fanout))
		}
		var attrs []string
		if i < len(t.Levels)-1 {
			attrs = append(attrs, "tau="+strconv.Itoa(lv.Tau))
		}
		if lv.Agg.Robust() {
			attrs = append(attrs, "agg="+lv.Agg.String())
		}
		if lv.HasGamma {
			attrs = append(attrs, "gamma="+strconv.FormatFloat(lv.Gamma, 'g', -1, 64))
		}
		if lv.HasAdapt {
			attrs = append(attrs, "adapt="+strconv.FormatBool(lv.Adapt))
		}
		if len(attrs) > 0 {
			b.WriteByte(':')
			b.WriteString(strings.Join(attrs, ","))
		}
	}
	return b.String()
}

// Parse builds and validates a Topology from its text form.
func Parse(s string) (*Topology, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("%w: empty spec", ErrSyntax)
	}
	parts := strings.Split(s, "/")
	if len(parts) > MaxDepth {
		return nil, fmt.Errorf("%w: %d levels exceed MaxDepth %d", ErrBounds, len(parts), MaxDepth)
	}
	t := &Topology{Levels: make([]Level, 0, len(parts))}
	for li, part := range parts {
		lv, err := parseLevel(strings.TrimSpace(part), li)
		if err != nil {
			return nil, err
		}
		t.Levels = append(t.Levels, lv)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// parseLevel parses one `name[*fanout][:attr,...]` segment.
func parseLevel(part string, li int) (Level, error) {
	lv := Level{Fanout: 1, Tau: 1}
	head, attrs, hasAttrs := strings.Cut(part, ":")
	name, fan, hasFan := strings.Cut(head, "*")
	if err := checkName(name); err != nil {
		return Level{}, err
	}
	lv.Name = name
	if hasFan {
		if li == 0 {
			return Level{}, fmt.Errorf("%w: root level %q takes no fanout", ErrSyntax, name)
		}
		n, err := strconv.Atoi(fan)
		if err != nil || n < 1 {
			return Level{}, fmt.Errorf("%w: level %q fanout %q", ErrSyntax, name, fan)
		}
		if n > MaxFanout {
			return Level{}, fmt.Errorf("%w: level %q fanout %d exceeds MaxFanout %d",
				ErrBounds, name, n, MaxFanout)
		}
		lv.Fanout = n
	}
	if !hasAttrs {
		return lv, nil
	}
	seen := map[string]bool{}
	for _, attr := range strings.Split(attrs, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(attr), "=")
		if !ok || val == "" {
			return Level{}, fmt.Errorf("%w: level %q attribute %q: want key=value", ErrAttr, name, attr)
		}
		if seen[key] {
			return Level{}, fmt.Errorf("%w: level %q repeats attribute %q", ErrAttr, name, key)
		}
		seen[key] = true
		switch key {
		case "tau":
			n, err := strconv.Atoi(val)
			if err != nil || n < 1 {
				return Level{}, fmt.Errorf("%w: level %q tau %q: want a positive integer", ErrAttr, name, val)
			}
			lv.Tau = n
		case "agg":
			spec, err := parseAggRule(val)
			if err != nil {
				return Level{}, fmt.Errorf("%w: level %q agg %q: %v", ErrAttr, name, val, err)
			}
			lv.Agg = spec
		case "gamma":
			g, err := strconv.ParseFloat(val, 64)
			if err != nil || g < 0 || g >= 1 {
				return Level{}, fmt.Errorf("%w: level %q gamma %q: want a float in [0, 1)", ErrAttr, name, val)
			}
			lv.Gamma = g
			lv.HasGamma = true
		case "adapt":
			b, err := strconv.ParseBool(val)
			if err != nil {
				return Level{}, fmt.Errorf("%w: level %q adapt %q: want a bool", ErrAttr, name, val)
			}
			lv.Adapt = b
			lv.HasAdapt = true
		default:
			return Level{}, fmt.Errorf("%w: level %q has unknown attribute %q", ErrAttr, name, key)
		}
	}
	return lv, nil
}

// parseAggRule parses an aggregation rule, optionally parameterized:
// mean | median | trimmed(f) | clip(f) | cosine(f).
func parseAggRule(val string) (robust.Spec, error) {
	name, rest, hasParam := strings.Cut(val, "(")
	var param float64
	if hasParam {
		numStr, ok := strings.CutSuffix(rest, ")")
		if !ok {
			return robust.Spec{}, fmt.Errorf("unbalanced parameter parens")
		}
		p, err := strconv.ParseFloat(numStr, 64)
		if err != nil {
			return robust.Spec{}, fmt.Errorf("parameter %q is not a float", numStr)
		}
		param = p
	}
	kind, err := robust.ParseKind(name)
	if err != nil {
		return robust.Spec{}, err
	}
	spec := robust.Spec{Kind: kind}
	switch kind {
	case robust.Trimmed:
		spec.Trim = param
	case robust.Clip:
		spec.Clip = param
	case robust.Cosine:
		spec.CosMin = param
	default:
		if hasParam {
			return robust.Spec{}, fmt.Errorf("rule %q takes no parameter", name)
		}
	}
	if err := spec.Validate(); err != nil {
		return robust.Spec{}, err
	}
	return spec, nil
}

// checkName vets a level name: a lowercase letter followed by lowercase
// letters or digits. No dashes — node IDs are "<name>-<index>" and split on
// the last dash.
func checkName(name string) error {
	if name == "" || len(name) > maxNameLen {
		return fmt.Errorf("%w: level name %q: want 1..%d characters", ErrSyntax, name, maxNameLen)
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		if c >= 'a' && c <= 'z' {
			continue
		}
		if i > 0 && c >= '0' && c <= '9' {
			continue
		}
		return fmt.Errorf("%w: level name %q: want a lowercase letter followed by lowercase letters or digits", ErrSyntax, name)
	}
	return nil
}

// Validate checks a topology's structure: at least two levels (one
// aggregator over the training tier), unique names, the τℓ tiling rule, the
// leaf-parent-only momentum attributes, and the node-count bounds.
func (t *Topology) Validate() error {
	if t == nil || len(t.Levels) < 2 {
		return fmt.Errorf("%w: a topology needs at least two levels (aggregator over training tier)", ErrSyntax)
	}
	if len(t.Levels) > MaxDepth {
		return fmt.Errorf("%w: %d levels exceed MaxDepth %d", ErrBounds, len(t.Levels), MaxDepth)
	}
	names := make(map[string]bool, len(t.Levels))
	for i, lv := range t.Levels {
		if err := checkName(lv.Name); err != nil {
			return err
		}
		if names[lv.Name] {
			return fmt.Errorf("%w: duplicate level name %q", ErrSyntax, lv.Name)
		}
		names[lv.Name] = true
		if lv.Fanout < 1 || (i == 0 && lv.Fanout != 1) {
			return fmt.Errorf("%w: level %q fanout %d", ErrSyntax, lv.Name, lv.Fanout)
		}
		if lv.Fanout > MaxFanout {
			return fmt.Errorf("%w: level %q fanout %d exceeds MaxFanout %d",
				ErrBounds, lv.Name, lv.Fanout, MaxFanout)
		}
		if lv.Tau < 1 {
			return fmt.Errorf("%w: level %q tau %d: want >= 1", ErrAttr, lv.Name, lv.Tau)
		}
	}
	leaf := t.Levels[len(t.Levels)-1]
	if leaf.Tau != 1 {
		return fmt.Errorf("%w: training level %q takes no tau (it is fixed at 1)", ErrAttr, leaf.Name)
	}
	if leaf.Agg.Robust() {
		return fmt.Errorf("%w: training level %q aggregates nothing and takes no agg rule", ErrAttr, leaf.Name)
	}
	if leaf.HasGamma || leaf.HasAdapt {
		return fmt.Errorf("%w: training level %q runs the worker NAG; gamma/adapt belong to aggregating levels", ErrAttr, leaf.Name)
	}
	for i := 1; i < len(t.Levels); i++ {
		parent, child := t.Levels[i-1], t.Levels[i]
		if parent.Tau%child.Tau != 0 || parent.Tau < child.Tau {
			return fmt.Errorf("%w: level %q τ=%d does not tile parent %q τ=%d",
				ErrMisaligned, child.Name, child.Tau, parent.Name, parent.Tau)
		}
	}
	lp := t.LeafParent()
	for i, lv := range t.Levels[:len(t.Levels)-1] {
		if i != lp && lv.HasAdapt && lv.Adapt {
			return fmt.Errorf("%w: level %q cannot adapt γ: only the leaf-parent level %q receives the gradient and momentum accumulators",
				ErrAttr, lv.Name, t.Levels[lp].Name)
		}
	}
	// Bound the total node count without materializing anything. The width
	// product is checked level by level BEFORE multiplying so it can never
	// overflow (each factor is at most MaxFanout and the running product is
	// capped at MaxNodes).
	total, width := 0, 1
	for i := range t.Levels {
		if i > 0 {
			if width > MaxNodes/t.Levels[i].Fanout {
				return fmt.Errorf("%w: topology exceeds MaxNodes %d", ErrBounds, MaxNodes)
			}
			width *= t.Levels[i].Fanout
		}
		if total+width > MaxNodes {
			return fmt.Errorf("%w: topology exceeds MaxNodes %d", ErrBounds, MaxNodes)
		}
		total += width
	}
	return nil
}

// AlignsWith checks that a run of T iterations lands on a whole number of
// root periods (the tree analogue of fl.Config's T %% τπ == 0 rule).
func (t *Topology) AlignsWith(T int) error {
	if root := t.Levels[0].Tau; T%root != 0 {
		return fmt.Errorf("%w: T=%d is not a multiple of the root period τ=%d", ErrMisaligned, T, root)
	}
	return nil
}
