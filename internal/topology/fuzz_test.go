package topology

import (
	"strings"
	"testing"
)

// FuzzParseTopology asserts the parser's contract on arbitrary input: every
// string yields either a validated topology or a wrapped error — never a
// panic — pathological depth/fan-out is rejected by the bounds before any
// per-node allocation, and accepted specs round-trip through the canonical
// form exactly (Parse(t.String()) reproduces t and re-formats identically,
// the property the checkpoint fingerprint relies on).
func FuzzParseTopology(f *testing.F) {
	for _, seed := range []string{
		"cloud:tau=20/region:tau=5,agg=median/edge:tau=1/worker*8",
		"cloud:tau=4/edge*2:tau=2/worker*2",
		"cloud:tau=20/worker*8",
		"root:tau=8,gamma=0.25/mid*3:tau=4,agg=clip(1.5)/leaf*4",
		"cloud:tau=6,agg=cosine(0.5)/edge*2:tau=3,adapt=true/worker*5",
		"cloud:tau=20/edge*2:tau=7/worker*2",
		"a:tau=1/b*4096/c*4096",
		"x*9999999999999999999/y",
		"cloud:tau=4,agg=trimmed(0.2/worker",
		"//:=,*",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		// Bound the raw input so the fuzzer probes structure, not string
		// length (a spec within the depth/fanout/name bounds is short).
		if len(s) > 512 {
			return
		}
		topo, err := Parse(s)
		if err != nil {
			if topo != nil {
				t.Fatalf("Parse(%q) returned both a topology and %v", s, err)
			}
			return
		}
		if got := topo.NumNodes(); got > MaxNodes {
			t.Fatalf("Parse(%q) accepted %d nodes (> MaxNodes %d)", s, got, MaxNodes)
		}
		if got := topo.Depth(); got < 2 || got > MaxDepth {
			t.Fatalf("Parse(%q) accepted depth %d", s, got)
		}
		canon := topo.String()
		again, err := Parse(canon)
		if err != nil {
			t.Fatalf("Parse(%q): canonical form %q does not re-parse: %v", s, canon, err)
		}
		if got := again.String(); got != canon {
			t.Fatalf("canonical form is not a fixed point: %q -> %q", canon, got)
		}
		if len(again.Levels) != len(topo.Levels) {
			t.Fatalf("round-trip changed depth: %q", canon)
		}
		for i := range topo.Levels {
			if topo.Levels[i] != again.Levels[i] {
				t.Fatalf("round-trip changed level %d of %q: %+v != %+v",
					i, canon, topo.Levels[i], again.Levels[i])
			}
		}
		// Node IDs must resolve back to their coordinates for every level
		// (spot-check the first and last node per level; widths are bounded).
		for i := range topo.Levels {
			for _, idx := range []int{0, topo.Width(i) - 1} {
				id := topo.NodeID(i, idx)
				if strings.Count(id, "-") < 1 {
					t.Fatalf("node id %q has no index separator", id)
				}
				gi, gidx, err := topo.ParseNodeID(id)
				if err != nil || gi != i || gidx != idx {
					t.Fatalf("ParseNodeID(%q) = (%d,%d,%v), want (%d,%d)", id, gi, gidx, err, i, idx)
				}
			}
		}
	})
}
