package topology

import (
	"errors"
	"testing"

	"hieradmo/internal/robust"
)

func mustParse(t *testing.T, s string) *Topology {
	t.Helper()
	topo, err := Parse(s)
	if err != nil {
		t.Fatalf("Parse(%q): %v", s, err)
	}
	return topo
}

func TestParseIssueExample(t *testing.T) {
	topo := mustParse(t, "cloud:tau=20/region:tau=5,agg=median/edge:tau=1/worker*8")
	if got := topo.Depth(); got != 4 {
		t.Fatalf("depth = %d, want 4", got)
	}
	want := []Level{
		{Name: "cloud", Tau: 20, Fanout: 1},
		{Name: "region", Tau: 5, Fanout: 1, Agg: robust.Spec{Kind: robust.Median}},
		{Name: "edge", Tau: 1, Fanout: 1},
		{Name: "worker", Tau: 1, Fanout: 8},
	}
	for i, lv := range topo.Levels {
		if lv != want[i] {
			t.Errorf("level %d = %+v, want %+v", i, lv, want[i])
		}
	}
	if got := topo.NumLeaves(); got != 8 {
		t.Errorf("NumLeaves = %d, want 8", got)
	}
	if got := topo.NumNodes(); got != 11 {
		t.Errorf("NumNodes = %d, want 11", got)
	}
	if got := topo.SyncsPerParent(1); got != 4 {
		t.Errorf("SyncsPerParent(region) = %d, want 4", got)
	}
}

func TestParseRoundTrip(t *testing.T) {
	for _, spec := range []string{
		"cloud:tau=4/edge*2:tau=2/worker*2",
		"cloud:tau=20/worker*8",
		"cloud:tau=20/region*2:tau=10,agg=median/edge*2:tau=5,agg=trimmed(0.2)/worker*2",
		"root:tau=8,gamma=0.25/mid*3:tau=4,agg=clip(1.5)/leaf*4",
		"cloud:tau=6,agg=cosine(0.5)/edge*2:tau=3,adapt=true/worker*5",
		"a:tau=2,gamma=0/b*7",
	} {
		topo := mustParse(t, spec)
		out := topo.String()
		again := mustParse(t, out)
		if again.String() != out {
			t.Errorf("spec %q: format %q re-formats as %q", spec, out, again.String())
		}
		if len(again.Levels) != len(topo.Levels) {
			t.Fatalf("spec %q: depth changed on round-trip", spec)
		}
		for i := range topo.Levels {
			if topo.Levels[i] != again.Levels[i] {
				t.Errorf("spec %q level %d: %+v != %+v", spec, i, topo.Levels[i], again.Levels[i])
			}
		}
	}
}

// TestParseTauTiling pins the τℓ alignment rule: child sync rounds must tile
// parent periods, and misaligned specs fail with the typed ErrMisaligned.
func TestParseTauTiling(t *testing.T) {
	cases := []struct {
		spec string
		err  error
	}{
		{"cloud:tau=20/edge*2:tau=5/worker*2", nil},
		{"cloud:tau=6/edge*2:tau=6/worker*2", nil}, // equal periods tile (π=1)
		{"cloud:tau=20/edge*2:tau=7/worker*2", ErrMisaligned},
		{"cloud:tau=5/edge*2:tau=10/worker*2", ErrMisaligned}, // child slower than parent
		{"cloud:tau=8/region*2:tau=4/edge*2:tau=3/worker*2", ErrMisaligned},
		{"cloud:tau=8/region*2:tau=4/edge*2:tau=2/worker*2", nil},
	}
	for _, tc := range cases {
		_, err := Parse(tc.spec)
		if tc.err == nil && err != nil {
			t.Errorf("Parse(%q) = %v, want ok", tc.spec, err)
		}
		if tc.err != nil && !errors.Is(err, tc.err) {
			t.Errorf("Parse(%q) = %v, want %v", tc.spec, err, tc.err)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		spec string
		err  error
	}{
		{"", ErrSyntax},
		{"cloud:tau=4", ErrSyntax},            // single level
		{"cloud*2:tau=4/worker*2", ErrSyntax}, // root fanout
		{"cloud:tau=4/cloud*2", ErrSyntax},    // duplicate name
		{"Cloud:tau=4/worker*2", ErrSyntax},   // uppercase name
		{"9cloud:tau=4/worker*2", ErrSyntax},  // leading digit
		{"clo-ud:tau=4/worker*2", ErrSyntax},  // dash collides with node IDs
		{"cloud:tau=4/worker*0", ErrSyntax},
		{"cloud:tau=4/worker*-3", ErrSyntax},
		{"cloud:tau=4/worker*2x", ErrSyntax},
		{"cloud:tau=0/worker*2", ErrAttr},
		{"cloud:tau=4,tau=4/worker*2", ErrAttr}, // repeated attribute
		{"cloud:tau=4,bogus=1/worker*2", ErrAttr},
		{"cloud:tau=4,gamma=1.5/worker*2", ErrAttr},
		{"cloud:tau=4,gamma=-0.1/worker*2", ErrAttr},
		{"cloud:tau=4,adapt=maybe/worker*2", ErrAttr},
		{"cloud:tau=4,agg=bogus/worker*2", ErrAttr},
		{"cloud:tau=4,agg=trimmed(0.9)/worker*2", ErrAttr},
		{"cloud:tau=4,agg=median(0.5)/worker*2", ErrAttr},
		{"cloud:tau=4,agg=clip(1.0/worker*2", ErrAttr},                           // unbalanced parens
		{"cloud:tau=4/worker*2:tau=2", ErrAttr},                                  // leaf tau
		{"cloud:tau=4/worker*2:agg=median", ErrAttr},                             // leaf agg
		{"cloud:tau=4/worker*2:gamma=0.5", ErrAttr},                              // leaf gamma
		{"cloud:tau=8/region*2:tau=4,adapt=true/edge*2:tau=2/worker*2", ErrAttr}, // adapt off leaf-parent
		{"a:tau=1/b/c/d/e/f/g/h/i*2", ErrBounds},                                 // depth > MaxDepth
		{"cloud:tau=4/worker*100000", ErrBounds},                                 // fanout > MaxFanout
		{"cloud:tau=4/mid*4096:tau=2/worker*4096", ErrBounds},                    // nodes > MaxNodes
	}
	for _, tc := range cases {
		_, err := Parse(tc.spec)
		if !errors.Is(err, tc.err) {
			t.Errorf("Parse(%q) = %v, want %v", tc.spec, err, tc.err)
		}
	}
}

func TestNodeIDs(t *testing.T) {
	topo := mustParse(t, "cloud:tau=8/region*2:tau=4/edge*2:tau=2/worker*2")
	if got := topo.NodeID(0, 0); got != "cloud-0" {
		t.Errorf("root id = %q", got)
	}
	if got := topo.NodeID(3, 7); got != "worker-7" {
		t.Errorf("leaf id = %q", got)
	}
	for i := range topo.Levels {
		for idx := 0; idx < topo.Width(i); idx++ {
			id := topo.NodeID(i, idx)
			gi, gidx, err := topo.ParseNodeID(id)
			if err != nil || gi != i || gidx != idx {
				t.Fatalf("ParseNodeID(%q) = (%d, %d, %v), want (%d, %d)", id, gi, gidx, err, i, idx)
			}
		}
	}
	for _, bad := range []string{"", "cloud", "cloud-x", "cloud-1", "worker-8", "tower-0", "worker--1"} {
		if _, _, err := topo.ParseNodeID(bad); err == nil {
			t.Errorf("ParseNodeID(%q) unexpectedly ok", bad)
		}
	}
}

func TestAlignsWith(t *testing.T) {
	topo := mustParse(t, "cloud:tau=6/worker*2")
	if err := topo.AlignsWith(24); err != nil {
		t.Errorf("AlignsWith(24): %v", err)
	}
	if err := topo.AlignsWith(20); !errors.Is(err, ErrMisaligned) {
		t.Errorf("AlignsWith(20) = %v, want ErrMisaligned", err)
	}
}

func TestWidths(t *testing.T) {
	topo := mustParse(t, "cloud:tau=8/region*3:tau=4/edge*2:tau=2/worker*4")
	want := []int{1, 3, 6, 24}
	for i, w := range want {
		if got := topo.Width(i); got != w {
			t.Errorf("Width(%d) = %d, want %d", i, got, w)
		}
	}
	if got := topo.NumNodes(); got != 34 {
		t.Errorf("NumNodes = %d, want 34", got)
	}
	if got := topo.LeafParent(); got != 2 {
		t.Errorf("LeafParent = %d, want 2", got)
	}
}
