package analysis

import (
	"errors"
	"fmt"
	"go/token"
	"strings"
)

// directive is one parsed //flvet:allow comment. It suppresses findings by
// the named checkers on its own line (trailing comment) or the line below
// (annotation above the offending statement). Directives must carry a
// reason after " -- ", and a directive that suppresses nothing is itself
// reported, so exemptions stay tied to live findings.
type directive struct {
	file     string
	line     int
	checkers []string
	pos      token.Position
	used     bool
}

const directivePrefix = "//flvet:allow"

// Typed parse failures for //flvet:allow comments. ParseAllowDirective
// returns exactly one of these (possibly wrapped) for every rejected
// input, so callers — and the fuzzer — can distinguish "not a directive"
// from "a directive written wrong".
var (
	// ErrNotDirective: the comment is not a flvet:allow directive at all
	// (wrong prefix, or a longer //flvet:allowX token). Not an error to
	// report — the comment simply isn't ours.
	ErrNotDirective = errors.New("not a flvet:allow directive")
	// ErrMalformedDirective: the directive lacks the mandatory
	// " -- <reason>" clause.
	ErrMalformedDirective = errors.New(`malformed directive: want "//flvet:allow <checker>[,<checker>...] -- <reason>"`)
	// ErrUnknownChecker: a listed checker name is not in the suite.
	ErrUnknownChecker = errors.New("directive names unknown checker")
	// ErrNoCheckers: the name list is empty after trimming.
	ErrNoCheckers = errors.New("directive names no checkers")
)

// ParseAllowDirective parses a single comment's text. On success it
// returns the named checkers (all known, at least one). Otherwise it
// returns an error wrapping one of ErrNotDirective, ErrMalformedDirective,
// ErrUnknownChecker, or ErrNoCheckers. It never panics, for any input.
func ParseAllowDirective(text string) ([]string, error) {
	if !strings.HasPrefix(text, directivePrefix) {
		return nil, ErrNotDirective
	}
	rest := strings.TrimPrefix(text, directivePrefix)
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return nil, ErrNotDirective // some other //flvet:allowX token, not ours
	}
	names, reason, ok := strings.Cut(rest, " -- ")
	if !ok || strings.TrimSpace(reason) == "" {
		return nil, ErrMalformedDirective
	}
	var checkers []string
	var errs []error
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if !checkerKnown(name) {
			errs = append(errs, fmt.Errorf("%w %q", ErrUnknownChecker, name))
			continue
		}
		checkers = append(checkers, name)
	}
	if len(errs) > 0 {
		return checkers, errors.Join(errs...)
	}
	if len(checkers) == 0 {
		return nil, ErrNoCheckers
	}
	return checkers, nil
}

// collectDirectives scans a package's comments for //flvet:allow
// directives, returning the well-formed ones plus diagnostics for the
// malformed ones.
func collectDirectives(pkg *Package) ([]*directive, []Diagnostic) {
	var dirs []*directive
	var diags []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				checkers, err := ParseAllowDirective(c.Text)
				if errors.Is(err, ErrNotDirective) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				switch {
				case errors.Is(err, ErrMalformedDirective):
					diags = append(diags, Diagnostic{
						Pos:     pos,
						Checker: "flvet",
						Message: err.Error(),
					})
					continue
				case errors.Is(err, ErrUnknownChecker):
					for _, line := range strings.Split(err.Error(), "\n") {
						diags = append(diags, Diagnostic{
							Pos:     pos,
							Checker: "flvet",
							Message: line,
						})
					}
					if len(checkers) == 0 {
						continue
					}
				case errors.Is(err, ErrNoCheckers):
					continue // nothing named, nothing to do
				}
				dirs = append(dirs, &directive{
					file:     pos.Filename,
					line:     pos.Line,
					checkers: checkers,
					pos:      pos,
				})
			}
		}
	}
	return dirs, diags
}

// suppress drops diagnostics covered by a directive, marking the
// directives it consumed as used.
func suppress(diags []Diagnostic, dirs []*directive) []Diagnostic {
	if len(dirs) == 0 {
		return diags
	}
	kept := diags[:0]
	for _, d := range diags {
		if !suppressed(d, dirs) {
			kept = append(kept, d)
		}
	}
	return kept
}

func suppressed(d Diagnostic, dirs []*directive) bool {
	hit := false
	for _, dir := range dirs {
		if dir.file != d.Pos.Filename {
			continue
		}
		if d.Pos.Line != dir.line && d.Pos.Line != dir.line+1 {
			continue
		}
		for _, name := range dir.checkers {
			if name == d.Checker {
				// Keep scanning: several directives may cover one line, and
				// each that matches is legitimately "used".
				dir.used = true
				hit = true
			}
		}
	}
	return hit
}
