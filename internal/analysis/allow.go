package analysis

import (
	"fmt"
	"go/token"
	"strings"
)

// directive is one parsed //flvet:allow comment. It suppresses findings by
// the named checkers on its own line (trailing comment) or the line below
// (annotation above the offending statement). Directives must carry a
// reason after " -- ", and a directive that suppresses nothing is itself
// reported, so exemptions stay tied to live findings.
type directive struct {
	file     string
	line     int
	checkers []string
	pos      token.Position
	used     bool
}

const directivePrefix = "//flvet:allow"

// collectDirectives scans a package's comments for //flvet:allow
// directives, returning the well-formed ones plus diagnostics for the
// malformed ones.
func collectDirectives(pkg *Package) ([]*directive, []Diagnostic) {
	var dirs []*directive
	var diags []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				rest := strings.TrimPrefix(c.Text, directivePrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // some other //flvet:allowX token, not ours
				}
				names, reason, ok := strings.Cut(rest, " -- ")
				if !ok || strings.TrimSpace(reason) == "" {
					diags = append(diags, Diagnostic{
						Pos:     pos,
						Checker: "flvet",
						Message: `malformed directive: want "//flvet:allow <checker>[,<checker>...] -- <reason>"`,
					})
					continue
				}
				var checkers []string
				for _, name := range strings.Split(names, ",") {
					name = strings.TrimSpace(name)
					if name == "" {
						continue
					}
					if !checkerKnown(name) {
						diags = append(diags, Diagnostic{
							Pos:     pos,
							Checker: "flvet",
							Message: fmt.Sprintf("directive names unknown checker %q", name),
						})
						continue
					}
					checkers = append(checkers, name)
				}
				if len(checkers) == 0 {
					continue // every name was diagnosed above
				}
				dirs = append(dirs, &directive{
					file:     pos.Filename,
					line:     pos.Line,
					checkers: checkers,
					pos:      pos,
				})
			}
		}
	}
	return dirs, diags
}

// suppress drops diagnostics covered by a directive, marking the
// directives it consumed as used.
func suppress(diags []Diagnostic, dirs []*directive) []Diagnostic {
	if len(dirs) == 0 {
		return diags
	}
	kept := diags[:0]
	for _, d := range diags {
		if !suppressed(d, dirs) {
			kept = append(kept, d)
		}
	}
	return kept
}

func suppressed(d Diagnostic, dirs []*directive) bool {
	hit := false
	for _, dir := range dirs {
		if dir.file != d.Pos.Filename {
			continue
		}
		if d.Pos.Line != dir.line && d.Pos.Line != dir.line+1 {
			continue
		}
		for _, name := range dir.checkers {
			if name == d.Checker {
				// Keep scanning: several directives may cover one line, and
				// each that matches is legitimately "used".
				dir.used = true
				hit = true
			}
		}
	}
	return hit
}
