package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// maporder: Go map iteration order is deliberately randomized, so a range
// over a map must never feed an order-sensitive sink — appending to a
// slice that is not subsequently sorted (the PartitionClasses bug PR 3
// fixed), accumulating floats (non-associative rounding makes the result
// order-dependent), or emitting trace events (trace byte-identity is a
// headline invariant). The one sanctioned idiom is collect-keys-then-sort:
// an append inside the range is accepted when the same enclosing block
// later passes that slice to sort.* or slices.*.
var maporderChecker = &Checker{
	Name: "maporder",
	Doc:  "no order-sensitive work (unsorted appends, float accumulation, trace emission) inside range-over-map",
	Run:  runMaporder,
}

func runMaporder(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			list, ok := stmtList(n)
			if !ok {
				return true
			}
			for i, stmt := range list {
				rs, ok := stmt.(*ast.RangeStmt)
				if !ok || !isMapType(p.TypeOf(rs.X)) {
					continue
				}
				checkMapRange(p, rs, list[i+1:])
			}
			return true
		})
	}
}

// stmtList extracts the statement list of any block-like node, so range
// statements nested in switch/select cases are found too.
func stmtList(n ast.Node) ([]ast.Stmt, bool) {
	switch n := n.(type) {
	case *ast.BlockStmt:
		return n.List, true
	case *ast.CaseClause:
		return n.Body, true
	case *ast.CommClause:
		return n.Body, true
	}
	return nil, false
}

// isMapType reports whether t is a map, including a type parameter whose
// constraint is a union of map types (the sortedKeys-style generic helper).
func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	if _, ok := t.Underlying().(*types.Map); ok {
		return true
	}
	tp, ok := types.Unalias(t).(*types.TypeParam)
	if !ok {
		return false
	}
	iface, ok := tp.Constraint().Underlying().(*types.Interface)
	if !ok {
		return false
	}
	found := false
	for i := 0; i < iface.NumEmbeddeds(); i++ {
		switch e := iface.EmbeddedType(i).(type) {
		case *types.Union:
			for j := 0; j < e.Len(); j++ {
				if _, ok := e.Term(j).Type().Underlying().(*types.Map); !ok {
					return false
				}
				found = true
			}
		default:
			if _, ok := e.Underlying().(*types.Map); !ok {
				return false
			}
			found = true
		}
	}
	return found
}

// checkMapRange walks one range-over-map body for order-sensitive sinks.
// rest is the tail of the enclosing statement list after the range, where
// the sanctioned collect-then-sort idiom places its sort call.
func checkMapRange(p *Pass, rs *ast.RangeStmt, rest []ast.Stmt) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			checkMapRangeAssign(p, n, rest)
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Emit" {
				if _, isMethod := p.ObjectOf(sel.Sel).(*types.Func); isMethod {
					p.Reportf(n.Pos(), "trace emission inside range over a map: event order would follow map iteration order")
				}
			}
		}
		return true
	})
}

func checkMapRangeAssign(p *Pass, as *ast.AssignStmt, rest []ast.Stmt) {
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		if len(as.Lhs) == 1 && isFloat(p.TypeOf(as.Lhs[0])) {
			p.Reportf(as.Pos(), "float accumulation inside range over a map: result depends on iteration order (iterate sorted keys instead)")
		}
		return
	case token.ASSIGN, token.DEFINE:
	default:
		return
	}
	for i, lhs := range as.Lhs {
		if i >= len(as.Rhs) {
			break
		}
		call, ok := as.Rhs[i].(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			continue
		}
		if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "append" || p.ObjectOf(id) != types.Universe.Lookup("append") {
			continue
		}
		if !sameExpr(p, lhs, call.Args[0]) {
			continue // not a self-accumulating append
		}
		id, ok := lhs.(*ast.Ident)
		if ok && sortedAfter(p, id, rest) {
			continue // collect-then-sort idiom
		}
		p.Reportf(as.Pos(), "append to %s inside range over a map without sorting afterwards: element order would follow map iteration order", exprString(lhs))
	}
}

func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// sameExpr reports structural equality for the simple expressions that
// appear as append targets: identifiers, selectors, and index expressions.
func sameExpr(p *Pass, a, b ast.Expr) bool {
	switch a := a.(type) {
	case *ast.Ident:
		b, ok := b.(*ast.Ident)
		return ok && p.ObjectOf(a) == p.ObjectOf(b)
	case *ast.SelectorExpr:
		b, ok := b.(*ast.SelectorExpr)
		return ok && a.Sel.Name == b.Sel.Name && sameExpr(p, a.X, b.X)
	case *ast.IndexExpr:
		b, ok := b.(*ast.IndexExpr)
		return ok && sameExpr(p, a.X, b.X) && sameExpr(p, a.Index, b.Index)
	}
	return false
}

func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	}
	return "expression"
}

// sortedAfter reports whether a later statement in the enclosing block
// passes the collected slice to a sort.* or slices.* call.
func sortedAfter(p *Pass, id *ast.Ident, rest []ast.Stmt) bool {
	obj := p.ObjectOf(id)
	if obj == nil {
		return false
	}
	for _, stmt := range rest {
		found := false
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgID, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := p.ObjectOf(pkgID).(*types.PkgName)
			if !ok {
				return true
			}
			if path := pn.Imported().Path(); path != "sort" && path != "slices" {
				return true
			}
			for _, arg := range call.Args {
				if argID, ok := arg.(*ast.Ident); ok && p.ObjectOf(argID) == obj {
					found = true
				}
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}
