package analysis

// Policy decides which checkers run on which packages, and carries the
// nilsink type list. The zero policy runs nothing; DefaultPolicy encodes
// the repo's package table (documented in DESIGN.md §11).
type Policy struct {
	// Rules maps a checker name to the predicate deciding whether it runs
	// on a package import path. A missing entry disables the checker.
	Rules map[string]func(pkgPath string) bool
	// NilGuardTypes are the receiver type names whose pointer methods
	// nilsink requires to begin with a nil-receiver guard.
	NilGuardTypes []string
}

// Applies reports whether checker runs on the package at path.
func (p Policy) Applies(checker, path string) bool {
	rule, ok := p.Rules[checker]
	return ok && rule != nil && rule(path)
}

// anyPackage applies a checker everywhere.
func anyPackage(string) bool { return true }

// except applies a checker everywhere but the listed import paths.
func except(paths ...string) func(string) bool {
	return func(p string) bool {
		for _, x := range paths {
			if p == x {
				return false
			}
		}
		return true
	}
}

// only applies a checker to exactly the listed import paths.
func only(paths ...string) func(string) bool {
	return func(p string) bool {
		for _, x := range paths {
			if p == x {
				return true
			}
		}
		return false
	}
}

// DefaultPolicy is the repo's enforcement table for the module rooted at
// modulePath (normally "hieradmo"):
//
//   - detwall runs everywhere except internal/cluster and
//     internal/transport, whose receive timeouts and straggler deadlines
//     are wall-clock by design (failure detection cannot be deterministic).
//     Within internal/cluster the exemption is narrower than it looks:
//     deadline *arithmetic* (straggler grace, quorum horizons, interrupt
//     slicing) goes through the injectable cluster.Options.Clock seam, so
//     quorum-timing tests substitute a fake clock instead of scaling real
//     sleeps; only the actual socket waits and duration metrics read the
//     wall clock directly. New cluster code should reach for Options.now(),
//     not time.Now(), whenever the value feeds a deadline comparison;
//   - maporder runs everywhere: map iteration order must never reach a
//     float reduction, an ordered accumulation, or the trace;
//   - goexec runs everywhere except internal/parallel (the sanctioned
//     worker pool) and internal/cluster (the supervised node runtime);
//   - the kernel packages internal/tensor and internal/nn get no
//     exemptions: the GEMM and im2col/backprop hot loops fall under
//     detwall, maporder, and goexec like any other deterministic code —
//     a kernel that read the wall clock, ranged a map into an
//     accumulator, or spawned its own goroutines would break the
//     bit-identity contract the golden traces pin (enforcement pinned in
//     TestDefaultPolicyTable);
//   - wirealloc runs on the packages that decode wire or snapshot bytes;
//   - nilsink runs on internal/telemetry, over the instrument and sink
//     types whose nil fast path the hot loops rely on.
func DefaultPolicy(modulePath string) Policy {
	in := func(rel string) string {
		if rel == "" {
			return modulePath
		}
		return modulePath + "/" + rel
	}
	// Policy predicates see only module packages, so "everywhere" means
	// every package of this module.
	return Policy{
		Rules: map[string]func(string) bool{
			"detwall":  except(in("internal/cluster"), in("internal/transport")),
			"maporder": anyPackage,
			"goexec":   except(in("internal/parallel"), in("internal/cluster")),
			"wirealloc": only(
				in("internal/transport"),
				in("internal/persist"),
				in("internal/checkpoint"),
				in("internal/telemetry"),
				in("cmd/tracecat"),
			),
			"nilsink": only(in("internal/telemetry")),
		},
		NilGuardTypes: []string{"Counter", "Gauge", "Histogram", "Sink", "Tracer"},
	}
}
