package analysis

// Policy decides which checkers run on which packages, and carries the
// checker-specific tables: the nilsink type list, the checkpoint-registry
// types ckptstate keys on, and the pinned allocation-free hot-path roots
// for allocfree. The zero policy runs nothing; DefaultPolicy encodes the
// repo's package table (documented in DESIGN.md §11 and §16).
type Policy struct {
	// Rules maps a checker name to the predicate deciding whether it runs
	// on a package import path. A missing entry disables the checker.
	Rules map[string]func(pkgPath string) bool
	// NilGuardTypes are the receiver type names whose pointer methods
	// nilsink requires to begin with a nil-receiver guard.
	NilGuardTypes []string
	// CkptRegistries names the registry types ("pkg/path.Type") whose
	// Vector/RNG/Int/Float/Dynamic methods are snapshot-registration
	// primitives for ckptstate.
	CkptRegistries []string
	// HotFuncs pins exact functions ("pkg/path.Func" or
	// "(*pkg/path.Type).Method", as types.Func.FullName renders them) as
	// allocation-free hot-path roots for allocfree.
	HotFuncs []string
	// HotIfaces pins interface methods ("pkg/path.Iface.Method"); every
	// loaded implementation becomes an allocfree root.
	HotIfaces []string
}

// Applies reports whether checker runs on the package at path.
func (p Policy) Applies(checker, path string) bool {
	rule, ok := p.Rules[checker]
	return ok && rule != nil && rule(path)
}

// anyPackage applies a checker everywhere.
func anyPackage(string) bool { return true }

// except applies a checker everywhere but the listed import paths.
func except(paths ...string) func(string) bool {
	return func(p string) bool {
		for _, x := range paths {
			if p == x {
				return false
			}
		}
		return true
	}
}

// only applies a checker to exactly the listed import paths.
func only(paths ...string) func(string) bool {
	return func(p string) bool {
		for _, x := range paths {
			if p == x {
				return true
			}
		}
		return false
	}
}

// DefaultPolicy is the repo's enforcement table for the module rooted at
// modulePath (normally "hieradmo"):
//
//   - detwall runs everywhere except internal/cluster and
//     internal/transport, whose receive timeouts and straggler deadlines
//     are wall-clock by design (failure detection cannot be deterministic).
//     Within internal/cluster the exemption is narrower than it looks:
//     deadline *arithmetic* (straggler grace, quorum horizons, interrupt
//     slicing) goes through the injectable cluster.Options.Clock seam, so
//     quorum-timing tests substitute a fake clock instead of scaling real
//     sleeps; only the actual socket waits and duration metrics read the
//     wall clock directly. New cluster code should reach for Options.now(),
//     not time.Now(), whenever the value feeds a deadline comparison;
//   - maporder runs everywhere: map iteration order must never reach a
//     float reduction, an ordered accumulation, or the trace;
//   - fporder runs everywhere except internal/parallel (the sanctioned
//     reducers): float reductions iterate slices or sorted keys in fixed
//     index order, never channel-receive order or goroutine fan-in;
//   - goexec runs everywhere except internal/parallel (the sanctioned
//     worker pool) and internal/cluster (the supervised node runtime);
//   - ckptstate runs everywhere: any struct registering state with
//     internal/checkpoint.Registry (directly or through fl.Checkpointer)
//     must register every mutable stateful field;
//   - allocfree runs everywhere; what it checks is pinned by the root
//     table below — the per-round worker steps and edge/tier update math
//     in internal/core and internal/cluster, the GEMM/conv kernels in
//     internal/tensor and internal/nn, and every robust.Aggregator
//     implementation. The kernel packages carry no exemptions
//     (enforcement pinned in TestDefaultPolicyTable);
//   - wirealloc runs on the packages that decode wire or snapshot bytes;
//   - nilsink runs on internal/telemetry, over the instrument and sink
//     types whose nil fast path the hot loops rely on.
func DefaultPolicy(modulePath string) Policy {
	in := func(rel string) string {
		if rel == "" {
			return modulePath
		}
		return modulePath + "/" + rel
	}
	// Policy predicates see only module packages, so "everywhere" means
	// every package of this module.
	return Policy{
		Rules: map[string]func(string) bool{
			"detwall":   except(in("internal/cluster"), in("internal/transport")),
			"maporder":  anyPackage,
			"fporder":   except(in("internal/parallel")),
			"goexec":    except(in("internal/parallel"), in("internal/cluster")),
			"ckptstate": anyPackage,
			"allocfree": anyPackage,
			"wirealloc": only(
				in("internal/transport"),
				in("internal/persist"),
				in("internal/checkpoint"),
				in("internal/telemetry"),
				in("cmd/tracecat"),
			),
			"nilsink": only(in("internal/telemetry")),
		},
		NilGuardTypes:  []string{"Counter", "Gauge", "Histogram", "Sink", "Tracer"},
		CkptRegistries: []string{in("internal/checkpoint") + ".Registry"},
		HotFuncs: []string{
			// The per-round worker step and edge update: the simulation's
			// steady-state inner loops (slab arenas, PR 7).
			"(*" + in("internal/core") + ".workerState).step",
			"(*" + in("internal/core") + ".HierAdMo).edgeUpdate",
			// The distributed runtime's equivalents.
			"(*" + in("internal/cluster") + ".workerNode).step",
			"(*" + in("internal/cluster") + ".treeLeaf).step",
			// The GEMM kernels every dense/conv layer reduces to.
			in("internal/tensor") + ".GEMMBias",
			in("internal/tensor") + ".GEMMAddTransB",
			// The im2col conv kernels and the fused conv+ReLU fast path.
			"(*" + in("internal/nn") + ".Conv2D).Forward",
			"(*" + in("internal/nn") + ".Conv2D).Backward",
			"(*" + in("internal/nn") + ".convReLU).Forward",
			"(*" + in("internal/nn") + ".convReLU).Backward",
		},
		HotIfaces: []string{
			// Every robust aggregation rule runs once per round per tier on
			// whole-cohort state: all implementations are pinned.
			in("internal/robust") + ".Aggregator.Aggregate",
		},
	}
}
