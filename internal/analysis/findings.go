// Machine-readable findings and the committed-baseline ratchet.
//
// `flvet -json` emits findings as a JSON array for diffing across PRs;
// `flvet -baseline analysis_baseline.json` compares findings against a
// committed baseline: findings present in the baseline pass (they are
// accepted debt), new findings fail, and fixed findings shrink the file
// on the next run. That lets a strict checker land before the codebase
// is at zero findings, while guaranteeing the count only ratchets down.
//
// Baseline entries key on (file, checker, message) with a count —
// deliberately not line numbers, so unrelated edits to a file do not
// churn the baseline. Messages contain only base filenames (see
// Program.shortPos), keeping the file machine-independent.
package analysis

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Finding is the JSON form of a Diagnostic.
type Finding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Checker string `json:"checker"`
	Message string `json:"message"`
}

// FindingsOf converts diagnostics, relativizing file paths to relTo so
// JSON artifacts and baselines stay machine-independent.
func FindingsOf(diags []Diagnostic, relTo string) []Finding {
	out := make([]Finding, 0, len(diags))
	for _, d := range diags {
		file := d.Pos.Filename
		if relTo != "" {
			if rel, err := filepath.Rel(relTo, file); err == nil && !strings.HasPrefix(rel, "..") {
				file = filepath.ToSlash(rel)
			}
		}
		out = append(out, Finding{
			File: file, Line: d.Pos.Line, Col: d.Pos.Column,
			Checker: d.Checker, Message: d.Message,
		})
	}
	return out
}

// WriteFindingsJSON writes the findings array as indented JSON.
func WriteFindingsJSON(path string, fs []Finding) error {
	data, err := json.MarshalIndent(fs, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// MarshalFindings renders the findings array (for stdout emission).
func MarshalFindings(fs []Finding) ([]byte, error) {
	if fs == nil {
		fs = []Finding{}
	}
	data, err := json.MarshalIndent(fs, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// baselineEntry is one accepted finding class in the committed baseline.
type baselineEntry struct {
	File    string `json:"file"`
	Checker string `json:"checker"`
	Message string `json:"message"`
	Count   int    `json:"count"`
}

// baselineFile is the on-disk shape of analysis_baseline.json.
type baselineFile struct {
	Findings []baselineEntry `json:"findings"`
}

func baselineKey(file, checker, message string) string {
	return file + "\x00" + checker + "\x00" + message
}

// LoadBaseline reads a committed baseline. A missing or malformed file is
// an error, never an empty baseline: silently treating it as empty would
// bypass the ratchet exactly when it matters.
func LoadBaseline(path string) (map[string]int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("baseline %s: %w (run flvet -write-baseline %s to create it)", path, err, path)
	}
	var bf baselineFile
	if err := json.Unmarshal(data, &bf); err != nil {
		return nil, fmt.Errorf("baseline %s: malformed JSON: %w", path, err)
	}
	base := make(map[string]int, len(bf.Findings))
	for _, e := range bf.Findings {
		if e.Count <= 0 {
			return nil, fmt.Errorf("baseline %s: entry %q/%q has non-positive count %d", path, e.File, e.Checker, e.Count)
		}
		base[baselineKey(e.File, e.Checker, e.Message)] += e.Count
	}
	return base, nil
}

// ApplyBaseline splits findings into fresh (not covered by the baseline)
// and returns how many baseline slots went unused (stale entries that
// should shrink the committed file).
func ApplyBaseline(fs []Finding, base map[string]int) (fresh []Finding, stale int) {
	remaining := make(map[string]int, len(base))
	for k, v := range base {
		remaining[k] = v
	}
	for _, f := range fs {
		k := baselineKey(f.File, f.Checker, f.Message)
		if remaining[k] > 0 {
			remaining[k]--
			continue
		}
		fresh = append(fresh, f)
	}
	for _, v := range remaining {
		stale += v
	}
	return fresh, stale
}

// WriteBaseline writes the current findings as the new baseline, sorted
// and aggregated by (file, checker, message).
func WriteBaseline(path string, fs []Finding) error {
	counts := map[string]*baselineEntry{}
	var keys []string
	for _, f := range fs {
		k := baselineKey(f.File, f.Checker, f.Message)
		if e, ok := counts[k]; ok {
			e.Count++
			continue
		}
		counts[k] = &baselineEntry{File: f.File, Checker: f.Checker, Message: f.Message, Count: 1}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	bf := baselineFile{Findings: make([]baselineEntry, 0, len(keys))}
	for _, k := range keys {
		bf.Findings = append(bf.Findings, *counts[k])
	}
	data, err := json.MarshalIndent(bf, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
