package analysis

import (
	"go/ast"
	"go/types"
)

// goexec: goroutines are spawned only through internal/parallel (whose
// pool keeps reductions in fixed index order, the basis of bit-identical
// results at any worker count) and the cluster runtime's supervised node
// loops. A raw `go` statement or hand-rolled sync.WaitGroup anywhere else
// is either a determinism hazard or a lifecycle leak, and must justify
// itself with //flvet:allow.
var goexecChecker = &Checker{
	Name: "goexec",
	Doc:  "no raw go statements or sync.WaitGroup outside internal/parallel and internal/cluster",
	Run:  runGoexec,
}

func runGoexec(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				p.Reportf(n.Pos(), "raw go statement in %s (use parallel.ForEach, or justify with //flvet:allow)", p.Pkg.Path)
			case *ast.SelectorExpr:
				tn, ok := p.ObjectOf(n.Sel).(*types.TypeName)
				if !ok || tn.Pkg() == nil {
					return true
				}
				if tn.Pkg().Path() == "sync" && tn.Name() == "WaitGroup" {
					p.Reportf(n.Pos(), "sync.WaitGroup in %s (use parallel.ForEach, or justify with //flvet:allow)", p.Pkg.Path)
				}
			}
			return true
		})
	}
}
