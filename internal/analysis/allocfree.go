// The allocfree checker: functions pinned as hot-path roots by the policy
// (the per-round worker step, edge/tier update math, the GEMM/conv
// kernels, every robust.Aggregator implementation) must not allocate in
// steady state. The slab-arena work of PR 7/8 made these paths
// allocation-free; this checker keeps them that way at vet time instead
// of waiting for the perf gate's allocs/op budget to trip.
//
// Reporting is at the frontier: direct allocation sites inside a root are
// reported where they stand, and a call from a root into an in-module
// function that transitively allocates is reported at the call site with
// a witness chain (callee → ... → allocation site), so the fix or the
// //flvet:allow escape lands where the hot path actually crosses into
// allocating code. Cold paths — return statements, panic arguments,
// blocks gated on *.Tracing() — are exempt: the steady-state round body
// never executes them.
package analysis

import (
	"fmt"
	"sort"
	"strings"
)

var allocfreeChecker = &Checker{
	Name: "allocfree",
	Doc:  "pinned hot-path roots (worker step, aggregators, GEMM/conv kernels) must not allocate in steady state",
	Run:  runAllocfree,
}

// allocExternals names out-of-module functions known to allocate on every
// call. fmt-style variadic APIs are already caught by the boxing check at
// the call boundary; this list covers allocation hidden behind concrete
// signatures.
var allocExternals = map[string]string{
	"fmt.Sprintf":         "formats into a fresh string",
	"fmt.Sprint":          "formats into a fresh string",
	"fmt.Sprintln":        "formats into a fresh string",
	"fmt.Errorf":          "allocates an error",
	"errors.New":          "allocates an error",
	"strings.Join":        "builds a fresh string",
	"strings.Repeat":      "builds a fresh string",
	"strings.Split":       "allocates a slice of strings",
	"strings.Fields":      "allocates a slice of strings",
	"strings.ToUpper":     "builds a fresh string",
	"strings.ToLower":     "builds a fresh string",
	"strings.ReplaceAll":  "builds a fresh string",
	"strconv.Itoa":        "builds a fresh string",
	"strconv.FormatInt":   "builds a fresh string",
	"strconv.FormatUint":  "builds a fresh string",
	"strconv.FormatFloat": "builds a fresh string",
	"strconv.Quote":       "builds a fresh string",
	"sort.Float64s":       "boxes the slice into sort.Interface",
	"sort.Ints":           "boxes the slice into sort.Interface",
	"sort.Strings":        "boxes the slice into sort.Interface",
	"sort.Stable":         "allocates merge scratch",
}

// allocResult caches the whole-program allocation facts for one Run.
type allocResult struct {
	// witness maps each loaded function to its first hot allocation
	// witness; no entry = proven allocation-free through loaded code.
	witness map[*FuncInfo]*allocWitness
	// roots resolved from the policy, in deterministic order.
	roots []*FuncInfo
	// missing pinned names whose package IS loaded (rename protection).
	missing []string
}

// allocWitness explains why a function allocates: a direct site, a call
// into an allocating loaded callee, or a known-allocating external.
type allocWitness struct {
	site *AllocSite
	via  *FuncInfo
	ext  string
}

func runAllocfree(pass *Pass) {
	if pass.Prog == nil {
		return
	}
	res := pass.Prog.allocFacts(pass.Policy)
	for _, name := range res.missing {
		if pinRootPkg(name) == pass.Pkg.Path && len(pass.Pkg.Files) > 0 {
			pass.Reportf(pass.Pkg.Files[0].Pos(),
				"pinned hot root %q not found in package %s (renamed? update Policy.HotFuncs/HotIfaces)",
				name, pass.Pkg.Path)
		}
	}
	for _, root := range res.roots {
		if root.Pkg != pass.Pkg {
			continue
		}
		pass.Prog.reportRoot(pass, root, res)
	}
}

// allocFacts resolves the pinned roots and computes the transitive
// allocation fact for every loaded function.
func (p *Program) allocFacts(pol Policy) *allocResult {
	if p.alloc != nil {
		return p.alloc
	}
	res := &allocResult{witness: make(map[*FuncInfo]*allocWitness)}

	// Fixpoint: a function allocates if it has a hot direct site, hot-calls
	// a known-allocating external, or hot-calls a loaded function that
	// allocates.
	for changed := true; changed; {
		changed = false
		for _, fi := range p.fnList {
			if res.witness[fi] != nil {
				continue
			}
			if w := p.allocWitnessOf(fi, res); w != nil {
				res.witness[fi] = w
				changed = true
			}
		}
	}

	// Roots: exact pinned functions plus every loaded implementation of the
	// pinned interface methods.
	seen := map[*FuncInfo]bool{}
	addRoot := func(fi *FuncInfo) {
		if fi != nil && !seen[fi] {
			seen[fi] = true
			res.roots = append(res.roots, fi)
		}
	}
	for _, name := range pol.HotFuncs {
		if fi := p.fnByName[name]; fi != nil {
			addRoot(fi)
		} else if p.hasLoadedPackage(pinRootPkg(name)) {
			res.missing = append(res.missing, name)
		}
	}
	for _, name := range pol.HotIfaces {
		dot := strings.LastIndex(name, ".")
		if dot < 0 {
			continue
		}
		tn := p.lookupTypeName(name[:dot])
		if tn == nil {
			if p.hasLoadedPackage(pinRootPkg(name)) {
				res.missing = append(res.missing, name)
			}
			continue
		}
		impls := p.implementers(tn.Type(), name[dot+1:])
		var infos []*FuncInfo
		for _, fn := range impls {
			if fi := p.FuncOf(fn); fi != nil {
				infos = append(infos, fi)
			}
		}
		if len(infos) == 0 && p.hasLoadedPackage(tn.Pkg().Path()) {
			res.missing = append(res.missing, name)
		}
		sort.Slice(infos, func(i, j int) bool {
			return infos[i].Obj.FullName() < infos[j].Obj.FullName()
		})
		for _, fi := range infos {
			addRoot(fi)
		}
	}
	p.alloc = res
	return res
}

// allocWitnessOf finds one hot allocation reason for fi under the current
// fixpoint state, or nil.
func (p *Program) allocWitnessOf(fi *FuncInfo, res *allocResult) *allocWitness {
	for i := range fi.Allocs {
		if !fi.Allocs[i].Cold {
			return &allocWitness{site: &fi.Allocs[i]}
		}
	}
	for i := range fi.Calls {
		call := &fi.Calls[i]
		if call.Cold {
			continue
		}
		for _, callee := range call.Callees {
			if cfi := p.FuncOf(callee); cfi != nil {
				if cfi != fi && res.witness[cfi] != nil {
					return &allocWitness{via: cfi}
				}
			} else if _, bad := allocExternals[callee.FullName()]; bad {
				return &allocWitness{ext: callee.FullName()}
			}
		}
	}
	return nil
}

// reportRoot emits the frontier findings for one pinned root: direct hot
// allocation sites, plus hot calls into allocating callees with a witness
// chain.
func (p *Program) reportRoot(pass *Pass, root *FuncInfo, res *allocResult) {
	name := shortFuncName(root.Obj.FullName())
	for i := range root.Allocs {
		a := &root.Allocs[i]
		if a.Cold {
			continue
		}
		pass.Reportf(a.Pos, "%s is a pinned allocation-free hot path: %s", name, a.Kind)
	}
	for i := range root.Calls {
		call := &root.Calls[i]
		if call.Cold {
			continue
		}
		var reasons []string
		for _, callee := range call.Callees {
			if cfi := p.FuncOf(callee); cfi != nil {
				if cfi != root && res.witness[cfi] != nil {
					reasons = append(reasons, p.witnessChain(cfi, res, 0))
				}
			} else if why, bad := allocExternals[callee.FullName()]; bad {
				reasons = append(reasons, fmt.Sprintf("%s %s", callee.FullName(), why))
			}
		}
		if len(reasons) == 0 {
			continue
		}
		kind := "call"
		if call.Dynamic {
			kind = "dynamic call"
		}
		pass.Reportf(call.Pos, "%s is a pinned allocation-free hot path: %s allocates (%s)",
			name, kind, strings.Join(reasons, "; "))
	}
}

// witnessChain renders "callee → ... → site" for the diagnostic message,
// using base filenames so baseline keys stay machine-independent.
func (p *Program) witnessChain(fi *FuncInfo, res *allocResult, depth int) string {
	w := res.witness[fi]
	name := shortFuncName(fi.Obj.FullName())
	if w == nil || depth > 5 {
		return name
	}
	if w.site != nil {
		return fmt.Sprintf("%s: %s at %s", name, w.site.Kind, p.shortPos(fi.Pkg, w.site.Pos))
	}
	if w.ext != "" {
		return fmt.Sprintf("%s → %s", name, w.ext)
	}
	return fmt.Sprintf("%s → %s", name, p.witnessChain(w.via, res, depth+1))
}

// shortFuncName strips import-path directories from a FullName, keeping
// messages compact and machine-independent:
// "(*hieradmo/internal/core.workerState).step" → "(*core.workerState).step".
func shortFuncName(full string) string {
	out := make([]byte, 0, len(full))
	start := 0
	for i := 0; i < len(full); i++ {
		switch full[i] {
		case '/':
			start = i + 1
		case '(', ')', '.', ' ', '[', ']', '*':
			out = append(out, full[start:i+1]...)
			start = i + 1
		}
	}
	return string(append(out, full[start:]...))
}

// pinRootPkg extracts the package path from a pinned-root name:
// "(*pkg/path.Type).Method", "(pkg/path.Type).Method" or "pkg/path.Func".
func pinRootPkg(name string) string {
	if i := strings.Index(name, "("); i >= 0 {
		name = strings.TrimLeft(name[i+1:], "*")
		if j := strings.Index(name, ")"); j >= 0 {
			name = name[:j]
		}
	}
	if dot := strings.LastIndex(name, "."); dot >= 0 {
		return name[:dot]
	}
	return name
}
