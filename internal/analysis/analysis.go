// Package analysis is a from-scratch static-analysis framework on the
// stdlib go/parser, go/ast, and go/types packages (no x/tools dependency).
// It exists to enforce, at vet time, the invariants every headline claim of
// this reproduction rests on — bit-identical runs across worker-pool sizes,
// byte-diffable golden traces, checkpoint resume fidelity — instead of
// relying on after-the-fact tests to catch violations:
//
//   - detwall: no wall-clock (time.Now/Since/Until) or global math/rand in
//     determinism-critical packages;
//   - maporder: no map-iteration-ordered appends, float accumulations, or
//     trace emissions (the PartitionClasses class of bug);
//   - goexec: goroutines and sync.WaitGroup only via internal/parallel and
//     the cluster runtime;
//   - wirealloc: no allocations sized from decoded wire/snapshot length
//     fields without a bounds check (the class FuzzOpenSnapshot caught);
//   - nilsink: telemetry instrument methods keep their nil-receiver guard,
//     preserving the "nil sink is free" contract;
//   - ckptstate: every mutable stateful field of a struct registered with
//     internal/checkpoint.Registry is covered by a registration call
//     (cross-package, on the call-graph substrate in callgraph.go);
//   - allocfree: functions pinned as hot-path roots (worker step, GEMM and
//     conv kernels, robust.Aggregator implementations) do not allocate in
//     steady state, reported at the frontier with a witness chain;
//   - fporder: float reductions iterate in fixed index order — no plain
//     self-assign accumulation over map ranges, no channel-receive-order
//     accumulation, no goroutine fan-in outside internal/parallel.
//
// A finding is suppressed by an exemption directive on the offending line
// (or the line above):
//
//	//flvet:allow <checker>[,<checker>...] -- <reason>
//
// The reason is mandatory and unused directives are themselves errors, so
// stale exemptions cannot linger. The cmd/flvet driver loads every package
// in the module (via `go list -export` for dependency type information),
// runs the suite, and exits nonzero on any finding.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Diagnostic is one finding: a position, the checker that produced it, and
// a human-readable message.
type Diagnostic struct {
	Pos     token.Position
	Checker string
	Message string
}

// String renders the finding the way compilers do: file:line:col: checker: message.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Checker, d.Message)
}

// Checker is one analysis: a name (used in diagnostics and directives), a
// one-line doc string, and the function that inspects a package.
type Checker struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass is the per-(checker, package) invocation context handed to
// Checker.Run: the package's syntax and type information plus the policy
// in force, the whole-program substrate for the cross-package checkers,
// and the Reportf sink for findings.
type Pass struct {
	Fset   *token.FileSet
	Pkg    *Package
	Policy Policy
	Prog   *Program

	checker string
	diags   *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:     p.Fset.Position(pos),
		Checker: p.checker,
		Message: fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of an expression (nil when untyped).
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Pkg.Info.TypeOf(e) }

// ObjectOf returns the object an identifier denotes (declaration or use).
func (p *Pass) ObjectOf(id *ast.Ident) types.Object { return p.Pkg.Info.ObjectOf(id) }

// Checkers returns the full suite in its fixed reporting order.
func Checkers() []*Checker {
	return []*Checker{
		detwallChecker,
		maporderChecker,
		fporderChecker,
		goexecChecker,
		wireallocChecker,
		nilsinkChecker,
		ckptstateChecker,
		allocfreeChecker,
	}
}

// checkerKnown reports whether name is a registered checker (directives
// naming anything else are malformed).
func checkerKnown(name string) bool {
	for _, c := range Checkers() {
		if c.Name == name {
			return true
		}
	}
	return false
}

// Run executes the checkers over every package under the policy, applies
// //flvet:allow suppressions, and returns the surviving diagnostics —
// including errors for malformed and unused directives — sorted by
// position.
func Run(pkgs []*Package, checkers []*Checker, pol Policy) []Diagnostic {
	var diags []Diagnostic
	var dirs []*directive
	prog := NewProgram(pkgs)
	for _, pkg := range pkgs {
		ds, derrs := collectDirectives(pkg)
		dirs = append(dirs, ds...)
		diags = append(diags, derrs...)
		for _, c := range checkers {
			if !pol.Applies(c.Name, pkg.Path) {
				continue
			}
			pass := &Pass{Fset: pkg.Fset, Pkg: pkg, Policy: pol, Prog: prog, checker: c.Name, diags: &diags}
			c.Run(pass)
		}
	}
	all := append([]Diagnostic(nil), diags...) // pre-suppression view, for relocation hints
	diags = suppress(diags, dirs)
	for _, d := range dirs {
		if !d.used {
			diags = append(diags, Diagnostic{
				Pos:     d.pos,
				Checker: "flvet",
				Message: fmt.Sprintf("unused flvet:allow directive for %q (nothing to suppress here%s)",
					d.checkers, nearestFindingHint(all, d)),
			})
		}
	}
	sortDiags(diags)
	return diags
}

// nearestFindingHint locates the finding the stale directive probably
// meant to cover: the closest diagnostic (by line distance) in the same
// file from any checker the directive names.
func nearestFindingHint(all []Diagnostic, d *directive) string {
	bestLine, bestDist := 0, -1
	var bestChecker string
	for _, diag := range all {
		if diag.Pos.Filename != d.file {
			continue
		}
		match := false
		for _, name := range d.checkers {
			if name == diag.Checker {
				match = true
			}
		}
		if !match {
			continue
		}
		dist := diag.Pos.Line - d.line
		if dist < 0 {
			dist = -dist
		}
		if bestDist < 0 || dist < bestDist {
			bestDist, bestLine, bestChecker = dist, diag.Pos.Line, diag.Checker
		}
	}
	if bestDist < 0 {
		return "; no matching findings anywhere in this file"
	}
	return fmt.Sprintf("; nearest %s finding in this file is on line %d", bestChecker, bestLine)
}

func sortDiags(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Checker < b.Checker
	})
}
