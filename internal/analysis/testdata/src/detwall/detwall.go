// Package detwall is the golden corpus for the detwall checker: wall-clock
// reads and global math/rand are banned in determinism-critical packages.
package detwall

import (
	"math/rand" // want "import of math/rand in determinism-critical package"
	"time"
)

// readClock exercises every banned time function plus the allowed ones.
func readClock() time.Duration {
	start := time.Now()          // want "time.Now reads the wall clock"
	elapsed := time.Since(start) // want "time.Since reads the wall clock"
	_ = time.Until(start)        // want "time.Until reads the wall clock"
	// Duration arithmetic and parsing carry no wall-clock and stay legal.
	d, _ := time.ParseDuration("10ms")
	return elapsed + d
}

// indirect references (not just calls) are caught too.
var clock = time.Now // want "time.Now reads the wall clock"

func roll() int {
	return rand.Int()
}
