// Package goexec is the golden corpus for the goexec checker: raw
// goroutines and hand-rolled sync.WaitGroup belong to internal/parallel
// and the cluster runtime only.
package goexec

import "sync"

type pool struct {
	wg sync.WaitGroup // want "sync.WaitGroup in flvet/corpus/goexec"
}

func fanOut(n int, fn func(int)) {
	var wg sync.WaitGroup // want "sync.WaitGroup in flvet/corpus/goexec"
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) { // want "raw go statement in flvet/corpus/goexec"
			defer wg.Done()
			fn(i)
		}(i)
	}
	wg.Wait()
}

// Mutexes and sync.Once are fine — only WaitGroup marks ad-hoc fan-out.
func locked(mu *sync.Mutex, fn func()) {
	mu.Lock()
	defer mu.Unlock()
	fn()
}
