// Package ckptstate is the golden corpus for the ckptstate checker:
// every mutable stateful field of a struct that registers checkpoint
// state must itself be covered by a registration call. The corpus
// Registry mirrors internal/checkpoint.Registry's five primitives.
package ckptstate

// Gen is the corpus RNG-handle type; the checker learns it from the
// Registry.RNG primitive's parameter.
type Gen struct{ state uint64 }

// Uint64 advances the stream.
func (g *Gen) Uint64() uint64 {
	g.state = g.state*6364136223846793005 + 1442695040888963407
	return g.state
}

// Registry mimics the five registration primitives of the real
// checkpoint registry; the corpus policy pins this type.
type Registry struct{ n int }

// Vector registers a float64 slice.
func (r *Registry) Vector(name string, v []float64) { r.n++ }

// RNG registers a generator handle.
func (r *Registry) RNG(name string, g *Gen) { r.n++ }

// Int registers a scalar counter.
func (r *Registry) Int(name string, p *int) { r.n++ }

// Float registers a scalar.
func (r *Registry) Float(name string, p *float64) { r.n++ }

// Dynamic registers an opaque blob codec.
func (r *Registry) Dynamic(name string, fn func() []byte) { r.n++ }

// good registers every stateful field: the clean shape.
type good struct {
	x      []float64
	r      *Gen
	rounds int
}

func (g *good) initCheckpoint(reg *Registry) {
	reg.Vector("x", g.x)
	reg.RNG("r", g.r)
	reg.Int("rounds", &g.rounds)
}

func (g *good) step() {
	g.rounds++
	g.x[0] += float64(g.r.Uint64())
}

// bad registers x but forgets its other mutable state: the vector and
// the RNG handle are stateful unconditionally, the counter because step
// mutates it outside any constructor.
type bad struct {
	x     []float64
	v     []float64 // want "struct ckptstate.bad registers checkpoint state but vector-state field .v. is never registered"
	g     *Gen      // want "struct ckptstate.bad registers checkpoint state but RNG-handle field .g. is never registered"
	count int       // want "struct ckptstate.bad registers checkpoint state but counter field .count. is never registered"
}

func (b *bad) initCheckpoint(reg *Registry) {
	reg.Vector("x", b.x)
}

func (b *bad) step() {
	b.count++
	b.v[0] = b.x[0] + float64(b.g.Uint64())
}

// fixedcfg's batch is written only by its constructor: configuration,
// not mutable state, so it needs no registration.
type fixedcfg struct {
	x     []float64
	batch int
}

func newFixedcfg(n int) *fixedcfg {
	f := &fixedcfg{x: make([]float64, n)}
	f.batch = n
	return f
}

func (f *fixedcfg) initCheckpoint(reg *Registry) {
	reg.Vector("x", f.x)
}

// forwarder re-exposes a registration primitive under the same name;
// the checker detects it by fixpoint, so registrations routed through
// it still count — and still make the caller's struct audited.
type forwarder struct{ reg *Registry }

// Vector forwards to the underlying registry.
func (c *forwarder) Vector(name string, v []float64) { c.reg.Vector(name, v) }

type viaFwd struct {
	y []float64
	z []float64 // want "struct ckptstate.viaFwd registers checkpoint state but vector-state field .z. is never registered"
}

func (s *viaFwd) initCheckpoint(c *forwarder) {
	c.Vector("y", s.y)
}

func (s *viaFwd) step() { s.z[0] = s.y[0] }

// scratchy's tmp is deliberately unregistered scratch, escaped with a
// reasoned directive.
type scratchy struct {
	x   []float64
	tmp []float64 //flvet:allow ckptstate -- per-step scratch, overwritten before use
}

func (s *scratchy) initCheckpoint(reg *Registry) {
	reg.Vector("x", s.x)
}

func (s *scratchy) step() {
	copy(s.tmp, s.x)
}

// plain never registers anything: structs outside the checkpoint system
// are not audited, however stateful their fields look.
type plain struct {
	buf []float64
	hit int
}

func (p *plain) bump() { p.hit++; p.buf[0] = 1 }
