// Package allow is the golden corpus for the //flvet:allow directive
// machinery: suppression on the same line and the line above, mandatory
// reasons, unknown checker names, and unused directives.
package allow

import "time"

// sameLine suppresses a finding with a trailing directive.
func sameLine() time.Time {
	return time.Now() //flvet:allow detwall -- corpus: trailing-directive form
}

// lineAbove suppresses with a directive on the preceding line.
func lineAbove() time.Time {
	//flvet:allow detwall -- corpus: annotation-above form
	return time.Now()
}

// multiName directives may cover several checkers at once.
func multiName(m map[string]float64) float64 {
	var sum float64
	start := time.Now() //flvet:allow detwall,maporder -- corpus: multi-checker directive (maporder half is unused on this line but detwall is consumed)
	for _, v := range m {
		sum += v // want "float accumulation inside range over a map"
	}
	return sum + time.Since(start).Seconds() // want "time.Since reads the wall clock"
}

// unguarded has no directive and must still be reported.
func unguarded() time.Time {
	return time.Now() // want "time.Now reads the wall clock"
}

//flvet:allow detwall -- corpus: nothing on the next line to suppress // want "unused flvet:allow directive"
var idle = 0

//flvet:allow detwall // want "malformed directive"
var noReason = time.Now // want "time.Now reads the wall clock"

//flvet:allow notachecker -- corpus: unknown checker name // want "unknown checker"
var unknown = 0
