// Package wirealloc is the golden corpus for the wirealloc checker: in
// decoder packages, a make() sized from a decoded length field must be
// preceded by a bounds check.
package wirealloc

import (
	"encoding/binary"
	"fmt"
)

const maxEntries = 1 << 20

// unchecked trusts a wire length outright — the class fuzzing caught in
// the PR 4 checkpoint decoder.
func unchecked(head []byte) []float64 {
	n := binary.LittleEndian.Uint64(head)
	return make([]float64, n) // want "make\(\) sized by n without a bounds check"
}

// uncheckedMap is the map-capacity form of the same bug.
func uncheckedMap(head []byte) map[uint32]string {
	n := binary.LittleEndian.Uint32(head)
	return make(map[uint32]string, n) // want "make\(\) sized by n without a bounds check"
}

// guarded validates before allocating: the decoder idiom the rule is
// built around.
func guarded(head []byte) ([]float64, error) {
	n := binary.LittleEndian.Uint64(head)
	if n > maxEntries {
		return nil, fmt.Errorf("implausible length %d", n)
	}
	return make([]float64, n), nil
}

// derived sizes stay guarded through arithmetic on the checked variable.
func derived(head []byte) ([]byte, error) {
	n := binary.LittleEndian.Uint32(head)
	if n > maxEntries {
		return nil, fmt.Errorf("implausible length %d", n)
	}
	return make([]byte, int(n)*8), nil
}

// inMemory sizes from data already held: len/cap, constants, and min() are
// all bounded and never flagged.
func inMemory(vectors [][]float64, n uint64) ([][]float64, []byte, []float64) {
	clones := make([][]float64, len(vectors))
	buf := make([]byte, 8+len(vectors)*8)
	capped := make([]float64, 0, min(n, 1<<16))
	return clones, buf, capped
}
