// Package fporder is the golden corpus for the fporder checker: float64
// reductions must visit their terms in a fixed index order — no map
// iteration, channel-receive order, or goroutine fan-in.
package fporder

import "sort"

// sumMap accumulates in map-iteration order; the plain `s = s + v`
// form maporder's compound-token check misses.
func sumMap(m map[string]float64) float64 {
	var s float64
	for _, v := range m {
		s = s + v // want "float accumulation inside range over a map"
	}
	return s
}

// sumSorted is the sanctioned map reduction: sort the keys first.
func sumSorted(m map[string]float64) float64 {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var s float64
	for _, k := range keys {
		s += m[k]
	}
	return s
}

// countMap is an integer count: not a float reduction, map order is
// immaterial.
func countMap(m map[string]float64) int {
	n := 0
	for range m {
		n = n + 1
	}
	return n
}

// sumChan accumulates in channel-receive order.
func sumChan(ch chan float64) float64 {
	var s float64
	for v := range ch {
		s += v // want "float accumulation inside range over a channel"
	}
	return s
}

// sumRecv feeds the accumulator straight from a receive.
func sumRecv(ch chan float64, n int) float64 {
	var s float64
	for i := 0; i < n; i++ {
		s += <-ch // want "float accumulation fed by a channel receive"
	}
	return s
}

// fanIn accumulates into a captured total from several goroutines:
// fan-in order reorders the reduction.
func fanIn(parts [][]float64) float64 {
	var total float64
	done := make(chan struct{})
	for i := range parts {
		go func(i int) {
			for _, v := range parts[i] {
				total += v // want "float accumulation into captured total inside a concurrent closure"
			}
			done <- struct{}{}
		}(i)
	}
	for range parts {
		<-done
	}
	return total
}

// perSlot is the sanctioned fan-in shape: each goroutine writes its own
// indexed slot, and one fixed-order pass combines them.
func perSlot(parts [][]float64) float64 {
	out := make([]float64, len(parts))
	done := make(chan struct{})
	for i := range parts {
		go func(i int) {
			for _, v := range parts[i] {
				out[i] += v
			}
			done <- struct{}{}
		}(i)
	}
	for range parts {
		<-done
	}
	var s float64
	for _, v := range out {
		s += v
	}
	return s
}

// debugSum tolerates order drift explicitly: the directive carries the
// reason.
func debugSum(m map[string]float64) float64 {
	var s float64
	for _, v := range m {
		//flvet:allow fporder -- debug-only total, never feeds the model
		s = s + v
	}
	return s
}
