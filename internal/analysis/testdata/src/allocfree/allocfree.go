// Package allocfree is the golden corpus for the allocfree checker:
// functions pinned as hot roots (and every function they reach) must
// not allocate — with cap-guarded growth, early returns, and
// pointer-shaped interface arguments recognized as non-allocating.
package allocfree

import "fmt"

// sink is an observer interface; passing a pointer into note is free,
// passing a value boxes it.
type sink interface{ note(v any) }

// recorder is sink's loaded implementation; its note does not allocate.
type recorder struct{ last any }

func (r *recorder) note(v any) { r.last = v }

// Engine carries the preallocated working buffer the hot loop reuses.
type Engine struct {
	buf []float64
	s   sink
}

// Step is pinned: its make is a direct hot allocation site.
func Step(dst []float64) {
	tmp := make([]float64, len(dst)) // want "allocfree.Step is a pinned allocation-free hot path: make"
	copy(dst, tmp)
}

// Tick is pinned: fill allocates transitively, and the int crosses the
// sink's interface parameter by boxing.
func (e *Engine) Tick(dst []float64) {
	fill(dst)          // want "allocfree.Engine..Tick is a pinned allocation-free hot path: call allocates .allocfree.fill: make"
	e.s.note(len(dst)) // want "argument int boxed into interface parameter"
}

// fill is not pinned itself; its make only matters because a hot root
// reaches it.
func fill(dst []float64) {
	pad := make([]float64, len(dst))
	copy(dst, pad)
}

// Scale is pinned and stays clean: the early error return is cold, the
// cap-guarded growth is amortized, and the *Engine handed to the sink
// is pointer-shaped (stored in the interface word, no allocation).
func Scale(s sink, e *Engine, dst []float64, k float64) error {
	if len(dst) == 0 {
		return fmt.Errorf("allocfree: empty dst")
	}
	if cap(e.buf) < len(dst) {
		e.buf = make([]float64, len(dst))
	}
	e.buf = e.buf[:len(dst)]
	for i, v := range dst {
		e.buf[i] = k * v
	}
	s.note(e)
	copy(dst, e.buf)
	return nil
}

// Mix is pinned: appending into a slice that starts nil grows it on the
// hot path, while appending into the caller-provided dst is the
// caller's capacity to manage and passes.
func Mix(dst []float64, vs []float64) []float64 {
	var doubled []float64
	for _, v := range vs {
		doubled = append(doubled, 2*v) // want "allocfree.Mix is a pinned allocation-free hot path: append grows"
	}
	dst = append(dst, doubled...)
	return dst
}

// Clone is pinned: the tail call must not hide its callee's allocation —
// the final return is still the hot path.
func Clone(src []float64) []float64 {
	return build(src) // want "allocfree.Clone is a pinned allocation-free hot path: call allocates .allocfree.build: make"
}

func build(src []float64) []float64 {
	out := make([]float64, len(src))
	copy(out, src)
	return out
}

// Warm is pinned; its warmup allocation is explicitly allowed with a
// reasoned directive.
func Warm(n int) []float64 {
	//flvet:allow allocfree -- one-time warmup buffer, not in the round loop
	w := make([]float64, n)
	return w
}

// Combine's implementations are pinned through the Agg interface row of
// the policy, not by concrete name.
type Agg interface {
	Combine(dst []float64, parts [][]float64)
}

type mean struct{}

func (m *mean) Combine(dst []float64, parts [][]float64) {
	acc := make([]float64, len(dst)) // want "allocfree.mean..Combine is a pinned allocation-free hot path: make"
	for _, p := range parts {
		for i, v := range p {
			acc[i] += v
		}
	}
	copy(dst, acc)
}
