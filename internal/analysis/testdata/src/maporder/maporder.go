// Package maporder is the golden corpus for the maporder checker: no
// order-sensitive sink may consume map iteration order.
package maporder

import (
	"sort"
)

type tracer struct{}

func (t *tracer) Emit(ev string, fields ...any) {}

// floatAccum loses determinism: float addition is not associative, so the
// sum depends on iteration order.
func floatAccum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want "float accumulation inside range over a map"
	}
	return sum
}

// intAccum is exact and order-independent; it must not be flagged.
func intAccum(m map[string]int) int {
	var n int
	for _, v := range m {
		n += v
	}
	return n
}

// unsortedCollect leaks map order into a slice.
func unsortedCollect(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "append to keys inside range over a map without sorting"
	}
	return keys
}

// collectThenSort is the sanctioned idiom: the slice is sorted in the same
// block after the loop.
func collectThenSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// sortSlice also counts: any sort.*/slices.* call over the collected slice.
func sortSlice(m map[string]float64) []float64 {
	vals := make([]float64, 0, len(m))
	for _, v := range m {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals
}

// emitInRange would write trace events in map order and break trace
// byte-identity.
func emitInRange(m map[string]int, tr *tracer) {
	for k, v := range m {
		tr.Emit("entry", k, v) // want "trace emission inside range over a map"
	}
}

// mapWrite is order-independent (keyed writes) and stays legal.
func mapWrite(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// sortedKeys is the generic helper shape used by the checkpoint encoder;
// the type parameter's core type is a map, and the idiom is sanctioned.
func sortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// genericUnsorted is the same generic shape without the sort: flagged.
func genericUnsorted[M ~map[string]V, V any](m M) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "append to keys inside range over a map without sorting"
	}
	return keys
}

// rangeOverSlice is not a map range; nothing to flag.
func rangeOverSlice(xs []float64) float64 {
	var sum float64
	for _, v := range xs {
		sum += v
	}
	return sum
}
