// Package nilsink is the golden corpus for the nilsink checker: exported
// pointer-receiver methods on instrument types must begin with a
// nil-receiver guard so a nil sink stays a free no-op.
package nilsink

import "sync/atomic"

type Counter struct {
	v atomic.Int64
}

// Inc keeps the guard: fine.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add dropped the guard: a nil counter would panic in the telemetry-off
// fast path.
func (c *Counter) Add(n int64) { // want "must begin with a nil-receiver guard"
	c.v.Add(n)
}

// reset is unexported and may assume a non-nil receiver.
func (c *Counter) reset() {
	c.v.Store(0)
}

type Sink struct {
	on bool
}

// Tracing uses the boolean one-liner guard shape: fine.
func (s *Sink) Tracing() bool {
	return s != nil && s.on
}

// Enabled checks the wrong thing first: flagged.
func (s *Sink) Enabled() bool { // want "must begin with a nil-receiver guard"
	if s.on {
		return true
	}
	return false
}

// Value-receiver methods cannot be nil and are exempt.
func (s Sink) Copy() Sink { return s }

type Tracer struct{}

// Unnamed receivers cannot be nil-checked: flagged.
func (*Tracer) Emit(ev string) { // want "must begin with a nil-receiver guard"
}
