package analysis

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// corpusPolicy enables the named checkers on every package, with the
// corpus's own instrument type names for nilsink.
func corpusPolicy(checkers ...string) Policy {
	rules := make(map[string]func(string) bool, len(checkers))
	for _, name := range checkers {
		rules[name] = func(string) bool { return true }
	}
	return Policy{
		Rules:         rules,
		NilGuardTypes: []string{"Counter", "Sink", "Tracer"},
	}
}

// want is one expectation: a diagnostic on a line whose message matches rx.
type want struct {
	line    int
	rx      *regexp.Regexp
	matched bool
}

var wantRE = regexp.MustCompile(`// want ((?:"(?:[^"\\]|\\.)*"\s*)+)`)
var wantStrRE = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

// collectWants scans a corpus file for // want "rx" expectations. Several
// quoted patterns after one marker expect several diagnostics on the line.
func collectWants(t *testing.T, path string) []*want {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var wants []*want
	for i, line := range strings.Split(string(data), "\n") {
		m := wantRE.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		for _, q := range wantStrRE.FindAllString(m[1], -1) {
			pat := q[1 : len(q)-1]
			pat = strings.ReplaceAll(pat, `\"`, `"`)
			rx, err := regexp.Compile(pat)
			if err != nil {
				t.Fatalf("%s:%d: bad want pattern %q: %v", path, i+1, pat, err)
			}
			wants = append(wants, &want{line: i + 1, rx: rx})
		}
	}
	return wants
}

// runCorpus loads one corpus package, runs the suite under pol, and
// compares the diagnostics against the corpus's want expectations.
func runCorpus(t *testing.T, name string, pol Policy) {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	pkg, err := LoadDir(dir, "flvet/corpus/"+name)
	if err != nil {
		t.Fatalf("load corpus %s: %v", name, err)
	}
	diags := Run([]*Package{pkg}, Checkers(), pol)

	var wants []*want
	byFile := map[string][]*want{}
	names, err := goFileNames(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, fname := range names {
		path := filepath.Join(dir, fname)
		ws := collectWants(t, path)
		abs, err := filepath.Abs(path)
		if err != nil {
			t.Fatal(err)
		}
		byFile[abs] = ws
		wants = append(wants, ws...)
	}
	if len(wants) == 0 {
		t.Fatalf("corpus %s has no want expectations", name)
	}

	for _, d := range diags {
		abs, err := filepath.Abs(d.Pos.Filename)
		if err != nil {
			t.Fatal(err)
		}
		if !claim(byFile[abs], d) {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("line %d: expected diagnostic matching %q, got none", w.line, w.rx)
		}
	}
}

// claim marks the first unmatched expectation that covers d.
func claim(wants []*want, d Diagnostic) bool {
	for _, w := range wants {
		if !w.matched && w.line == d.Pos.Line && w.rx.MatchString(d.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

func TestDetwallCorpus(t *testing.T)  { runCorpus(t, "detwall", corpusPolicy("detwall")) }
func TestMaporderCorpus(t *testing.T) { runCorpus(t, "maporder", corpusPolicy("maporder")) }
func TestGoexecCorpus(t *testing.T)   { runCorpus(t, "goexec", corpusPolicy("goexec")) }
func TestWireallocCorpus(t *testing.T) {
	runCorpus(t, "wirealloc", corpusPolicy("wirealloc"))
}
func TestNilsinkCorpus(t *testing.T) { runCorpus(t, "nilsink", corpusPolicy("nilsink")) }

// TestFporderCorpus covers the reduction-order shapes beyond maporder:
// plain map-range accumulation, channel receives, goroutine fan-in.
func TestFporderCorpus(t *testing.T) { runCorpus(t, "fporder", corpusPolicy("fporder")) }

// TestCkptstateCorpus pins the corpus's own Registry type so coverage,
// forwarders, constructor exclusion, and directives all exercise the
// same machinery the real checkpoint registry goes through.
func TestCkptstateCorpus(t *testing.T) {
	pol := corpusPolicy("ckptstate")
	pol.CkptRegistries = []string{"flvet/corpus/ckptstate.Registry"}
	runCorpus(t, "ckptstate", pol)
}

// TestAllocfreeCorpus pins corpus roots by concrete name and through an
// interface row, covering direct sites, transitive witnesses, tail
// calls, boxing, append growth, and the cold-path exemptions.
func TestAllocfreeCorpus(t *testing.T) {
	pol := corpusPolicy("allocfree")
	pol.HotFuncs = []string{
		"flvet/corpus/allocfree.Step",
		"(*flvet/corpus/allocfree.Engine).Tick",
		"flvet/corpus/allocfree.Scale",
		"flvet/corpus/allocfree.Mix",
		"flvet/corpus/allocfree.Clone",
		"flvet/corpus/allocfree.Warm",
	}
	pol.HotIfaces = []string{"flvet/corpus/allocfree.Agg.Combine"}
	runCorpus(t, "allocfree", pol)
}

// TestAllowCorpus exercises the directive machinery: suppression in both
// placements, mandatory reasons, unknown names, unused directives.
func TestAllowCorpus(t *testing.T) {
	runCorpus(t, "allow", corpusPolicy("detwall", "maporder"))
}

// TestCheckerDocs keeps every checker addressable by directives and the
// -list flag.
func TestCheckerDocs(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range Checkers() {
		if c.Name == "" || c.Doc == "" || c.Run == nil {
			t.Errorf("checker %+v incomplete", c)
		}
		if seen[c.Name] {
			t.Errorf("duplicate checker name %q", c.Name)
		}
		seen[c.Name] = true
		if !checkerKnown(c.Name) {
			t.Errorf("checkerKnown(%q) = false", c.Name)
		}
	}
	for _, name := range []string{
		"detwall", "maporder", "fporder", "goexec",
		"wirealloc", "nilsink", "ckptstate", "allocfree",
	} {
		if !seen[name] {
			t.Errorf("suite is missing checker %q", name)
		}
	}
	if checkerKnown("notachecker") {
		t.Error(`checkerKnown("notachecker") = true`)
	}
}

// TestDefaultPolicyTable pins the package policy documented in DESIGN.md
// §11: which checkers run where, and where the sanctioned exemptions are.
func TestDefaultPolicyTable(t *testing.T) {
	pol := DefaultPolicy("hieradmo")
	cases := []struct {
		checker, pkg string
		want         bool
	}{
		{"detwall", "hieradmo/internal/core", true},
		{"detwall", "hieradmo/internal/telemetry", true},
		{"detwall", "hieradmo/internal/rng", true},
		{"detwall", "hieradmo/internal/cluster", false},
		{"detwall", "hieradmo/internal/transport", false},
		{"maporder", "hieradmo/internal/cluster", true},
		{"maporder", "hieradmo/cmd/tracecat", true},
		{"goexec", "hieradmo/internal/parallel", false},
		{"goexec", "hieradmo/internal/cluster", false},
		{"goexec", "hieradmo/internal/transport", true},
		{"goexec", "hieradmo/internal/core", true},
		// The GEMM/conv kernel packages carry no exemptions: the hot loops
		// must stay deterministic, map-order-free, and goroutine-free.
		{"detwall", "hieradmo/internal/tensor", true},
		{"detwall", "hieradmo/internal/nn", true},
		{"maporder", "hieradmo/internal/tensor", true},
		{"maporder", "hieradmo/internal/nn", true},
		{"goexec", "hieradmo/internal/tensor", true},
		{"goexec", "hieradmo/internal/nn", true},
		{"wirealloc", "hieradmo/internal/tensor", false},
		{"nilsink", "hieradmo/internal/tensor", false},
		{"nilsink", "hieradmo/internal/nn", false},
		// The robust-aggregation package is pure sequential math on the
		// aggregation hot path: the full determinism battery applies, and
		// neither exemption class (wire decoders, telemetry internals) does.
		{"detwall", "hieradmo/internal/robust", true},
		{"maporder", "hieradmo/internal/robust", true},
		{"goexec", "hieradmo/internal/robust", true},
		{"wirealloc", "hieradmo/internal/robust", false},
		{"nilsink", "hieradmo/internal/robust", false},
		// The topology package (tree-spec grammar + validation) is pure
		// sequential parsing feeding the N-tier runtime's shape: the full
		// determinism battery applies with no exemptions, and it decodes no
		// wire bytes and holds no telemetry internals.
		{"detwall", "hieradmo/internal/topology", true},
		{"maporder", "hieradmo/internal/topology", true},
		{"goexec", "hieradmo/internal/topology", true},
		{"wirealloc", "hieradmo/internal/topology", false},
		{"nilsink", "hieradmo/internal/topology", false},
		// Same for the netsim tree environment that times those topologies.
		{"detwall", "hieradmo/internal/netsim", true},
		{"goexec", "hieradmo/internal/netsim", true},
		{"wirealloc", "hieradmo/internal/checkpoint", true},
		{"wirealloc", "hieradmo/internal/persist", true},
		{"wirealloc", "hieradmo/internal/transport", true},
		{"wirealloc", "hieradmo/internal/core", false},
		{"nilsink", "hieradmo/internal/telemetry", true},
		{"nilsink", "hieradmo/internal/core", false},
		// fporder runs everywhere except internal/parallel, whose reducers
		// are the sanctioned fixed-order primitives.
		{"fporder", "hieradmo/internal/core", true},
		{"fporder", "hieradmo/internal/cluster", true},
		{"fporder", "hieradmo/internal/robust", true},
		{"fporder", "hieradmo/internal/tensor", true},
		{"fporder", "hieradmo/internal/parallel", false},
		// ckptstate and allocfree are whole-program dataflow checkers with
		// no package exemptions at all: registration completeness and the
		// pinned hot roots are enforced wherever they appear — including
		// the kernel, robust-aggregation, and core packages.
		{"ckptstate", "hieradmo/internal/core", true},
		{"ckptstate", "hieradmo/internal/cluster", true},
		{"ckptstate", "hieradmo/internal/checkpoint", true},
		{"ckptstate", "hieradmo/internal/parallel", true},
		{"allocfree", "hieradmo/internal/core", true},
		{"allocfree", "hieradmo/internal/tensor", true},
		{"allocfree", "hieradmo/internal/nn", true},
		{"allocfree", "hieradmo/internal/robust", true},
	}
	for _, c := range cases {
		if got := pol.Applies(c.checker, c.pkg); got != c.want {
			t.Errorf("Applies(%s, %s) = %v, want %v", c.checker, c.pkg, got, c.want)
		}
	}
	want := []string{"Counter", "Gauge", "Histogram", "Sink", "Tracer"}
	if fmt.Sprint(pol.NilGuardTypes) != fmt.Sprint(want) {
		t.Errorf("NilGuardTypes = %v, want %v", pol.NilGuardTypes, want)
	}

	// The dataflow pin tables: the checkpoint registry type, the exact
	// hot roots, and the interface row that pins every robust aggregator.
	// Renaming any of these without updating the policy is itself a
	// finding (allocfree's missing-root rule), and this test keeps the
	// table from silently shrinking.
	if fmt.Sprint(pol.CkptRegistries) != fmt.Sprint([]string{"hieradmo/internal/checkpoint.Registry"}) {
		t.Errorf("CkptRegistries = %v", pol.CkptRegistries)
	}
	wantHot := []string{
		"(*hieradmo/internal/core.workerState).step",
		"(*hieradmo/internal/core.HierAdMo).edgeUpdate",
		"(*hieradmo/internal/cluster.workerNode).step",
		"(*hieradmo/internal/cluster.treeLeaf).step",
		"hieradmo/internal/tensor.GEMMBias",
		"hieradmo/internal/tensor.GEMMAddTransB",
		"(*hieradmo/internal/nn.Conv2D).Forward",
		"(*hieradmo/internal/nn.Conv2D).Backward",
		"(*hieradmo/internal/nn.convReLU).Forward",
		"(*hieradmo/internal/nn.convReLU).Backward",
	}
	if fmt.Sprint(pol.HotFuncs) != fmt.Sprint(wantHot) {
		t.Errorf("HotFuncs = %v, want %v", pol.HotFuncs, wantHot)
	}
	if fmt.Sprint(pol.HotIfaces) != fmt.Sprint([]string{"hieradmo/internal/robust.Aggregator.Aggregate"}) {
		t.Errorf("HotIfaces = %v", pol.HotIfaces)
	}
}
