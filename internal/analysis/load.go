package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Package is one loaded, type-checked package: syntax trees with comments
// plus the go/types information the checkers key on.
type Package struct {
	Path  string // import path
	Name  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listEntry is the subset of `go list -json` output the loader needs.
type listEntry struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
}

// goList runs `go list -export -deps -json` in dir for the given patterns
// and decodes the JSON stream. -export makes the build system produce
// export data for every dependency, which is how the type checker resolves
// imports without an x/tools loader.
func goList(dir string, patterns []string) ([]listEntry, error) {
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Name,Dir,Export,Standard,DepOnly,GoFiles",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var entries []listEntry
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var e listEntry
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decode go list output: %v", err)
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// exportImporter satisfies types.Importer by reading the compiler export
// data `go list -export` produced for each dependency.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok || f == "" {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(f)
	})
}

// ModuleRoot walks upward from dir to the enclosing go.mod and returns its
// directory and module path.
func ModuleRoot(dir string) (root, modulePath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					mod := strings.TrimSpace(rest)
					if unq, err := strconv.Unquote(mod); err == nil {
						mod = unq
					}
					return d, mod, nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module directive", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("analysis: no go.mod found above %s", abs)
		}
		d = parent
	}
}

// parseFiles parses the named files (with comments) into fset.
func parseFiles(fset *token.FileSet, dir string, names []string) ([]*ast.File, error) {
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// check type-checks one parsed package against the export-data importer.
func check(fset *token.FileSet, imp types.Importer, path string, files []*ast.File) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: imp, FakeImportC: true}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, nil, fmt.Errorf("analysis: type-check %s: %v", path, err)
	}
	return tpkg, info, nil
}

// LoadModule loads (parses and type-checks) every module package matching
// the patterns (default ./...), rooted at the go.mod enclosing dir. Test
// files are excluded: the invariants govern production code, and tests
// legitimately use wall-clock deadlines and raw goroutines.
func LoadModule(dir string, patterns ...string) ([]*Package, error) {
	root, module, err := ModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	entries, err := goList(root, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(entries))
	for _, e := range entries {
		exports[e.ImportPath] = e.Export
	}
	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	var pkgs []*Package
	for _, e := range entries {
		inModule := e.ImportPath == module || strings.HasPrefix(e.ImportPath, module+"/")
		if e.DepOnly || e.Standard || !inModule {
			continue
		}
		files, err := parseFiles(fset, e.Dir, e.GoFiles)
		if err != nil {
			return nil, err
		}
		tpkg, info, err := check(fset, imp, e.ImportPath, files)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, &Package{
			Path: e.ImportPath, Name: e.Name, Dir: e.Dir,
			Fset: fset, Files: files, Types: tpkg, Info: info,
		})
	}
	if len(pkgs) == 0 {
		return nil, fmt.Errorf("analysis: no module packages matched %v", patterns)
	}
	return pkgs, nil
}

// LoadDir loads a single directory of Go files as one package under the
// given import path, resolving its imports through the enclosing module's
// build system. This is how the checker corpora under testdata (which `go
// list ./...` deliberately ignores) are loaded.
func LoadDir(dir, importPath string) (*Package, error) {
	names, err := goFileNames(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	files, err := parseFiles(fset, dir, names)
	if err != nil {
		return nil, err
	}
	imports := map[string]bool{}
	for _, f := range files {
		for _, spec := range f.Imports {
			if p, err := strconv.Unquote(spec.Path.Value); err == nil {
				imports[p] = true
			}
		}
	}
	exports := map[string]string{}
	if len(imports) > 0 {
		root, _, err := ModuleRoot(dir)
		if err != nil {
			return nil, err
		}
		patterns := make([]string, 0, len(imports))
		for p := range imports {
			patterns = append(patterns, p)
		}
		sort.Strings(patterns)
		entries, err := goList(root, patterns)
		if err != nil {
			return nil, err
		}
		for _, e := range entries {
			exports[e.ImportPath] = e.Export
		}
	}
	tpkg, info, err := check(fset, exportImporter(fset, exports), importPath, files)
	if err != nil {
		return nil, err
	}
	return &Package{
		Path: importPath, Name: files[0].Name.Name, Dir: dir,
		Fset: fset, Files: files, Types: tpkg, Info: info,
	}, nil
}

// goFileNames lists the non-test .go files in dir, sorted by name.
func goFileNames(dir string) ([]string, error) {
	des, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, de := range des {
		name := de.Name()
		if de.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	return names, nil
}
