package analysis

import (
	"testing"
)

// TestModuleSelfGate runs the full checker suite over the whole module
// under the default policy and requires it to come back clean, so a plain
// `go test ./...` catches any new invariant violation (or stale
// //flvet:allow directive) even when make lint is skipped.
func TestModuleSelfGate(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the entire module")
	}
	_, module, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := LoadModule(".")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages; module discovery looks broken", len(pkgs))
	}
	for _, d := range Run(pkgs, Checkers(), DefaultPolicy(module)) {
		t.Errorf("flvet finding: %s", d)
	}
}
