package analysis

import (
	"testing"
)

// TestModuleSelfGate runs the full checker suite over the whole module
// under the default policy and requires it to come back clean, so a plain
// `go test ./...` catches any new invariant violation (or stale
// //flvet:allow directive) even when make lint is skipped.
func TestModuleSelfGate(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the entire module")
	}
	_, module, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := LoadModule(".")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages; module discovery looks broken", len(pkgs))
	}
	for _, d := range Run(pkgs, Checkers(), DefaultPolicy(module)) {
		t.Errorf("flvet finding: %s", d)
	}

	// The dataflow checkers must actually have engaged, not silently
	// no-oped: a clean result with no registration primitives resolved or
	// no hot roots pinned would mean the whole-program substrate lost the
	// real registry/kernels (e.g. after a rename) and the gate is
	// vacuous.
	var prog *Program
	for _, pkg := range pkgs {
		if len(pkg.Files) > 0 {
			prog = NewProgram(pkgs)
			break
		}
	}
	if prog == nil {
		t.Fatal("no loadable packages")
	}
	pol := DefaultPolicy(module)
	ckpt := prog.ckptFacts(pol)
	if len(ckpt.prims) != len(registrationKinds) {
		t.Errorf("ckptstate resolved %d registration primitives, want %d (is internal/checkpoint.Registry intact?)",
			len(ckpt.prims), len(registrationKinds))
	}
	if len(ckpt.fwd) == 0 {
		t.Error("ckptstate found no forwarders; fl.Checkpointer should forward to the registry")
	}
	if !ckpt.cand["hieradmo/internal/core.workerState"] {
		t.Error("ckptstate did not see core.workerState as checkpoint-registered")
	}
	alloc := prog.allocFacts(pol)
	if got, want := len(alloc.roots), len(pol.HotFuncs)+1; got < want {
		t.Errorf("allocfree resolved %d hot roots, want at least %d (HotFuncs plus ≥1 Aggregator implementation)",
			got, want)
	}
	if len(alloc.missing) > 0 {
		t.Errorf("pinned hot roots missing from loaded packages: %v", alloc.missing)
	}
}
