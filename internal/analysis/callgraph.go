// Call-graph approximation and per-function fact export: the shared
// substrate under the cross-package checkers (ckptstate, allocfree).
//
// The graph is deliberately lightweight — stdlib go/types only, no SSA:
//
//   - static calls resolve through Info.Uses/Info.Selections to a single
//     *types.Func;
//   - dynamic (interface-method) calls resolve by class-hierarchy
//     analysis: every loaded named type implementing the interface
//     contributes its method as a candidate callee;
//   - function literals are inlined into their enclosing declaration, so
//     a closure's allocations and calls are attributed to the function
//     that created it.
//
// Because each package is type-checked separately (imports resolve
// through export data), the same function is represented by distinct
// *types.Func objects on the defining and the using side. The program
// therefore canonicalizes by FullName: cross-package edges look up the
// defining package's record by name, never by object identity.
//
// Alongside call edges, every function exports its direct allocation
// sites (make/new, slice and map literals, growing appends, closures
// that capture, interface boxing at call boundaries, goroutine
// launches, string concatenation). Sites on cold paths — inside return
// statements, panic arguments, or blocks gated by a *.Tracing() check —
// are recorded but marked cold; the steady-state round body never
// executes them, so the allocation-freedom fact ignores them.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// CallSite is one call expression inside a function body, with the set of
// candidate callees the approximation resolved it to. Static calls have
// exactly one candidate; interface calls have one per implementing type
// loaded in the program; calls through func values have none.
type CallSite struct {
	Pos     token.Pos
	Expr    *ast.CallExpr
	Callees []*types.Func
	Dynamic bool // resolved via interface-method CHA
	Cold    bool // inside a return statement, panic argument, or trace gate
}

// AllocSite is one direct allocation inside a function body.
type AllocSite struct {
	Pos  token.Pos
	Kind string // human-readable label ("make", "closure captures ...", ...)
	Cold bool
}

// FuncInfo is the per-function fact record: the declaration, its package,
// and the exported call and allocation sites (closures inlined).
type FuncInfo struct {
	Obj    *types.Func
	Decl   *ast.FuncDecl
	Pkg    *Package
	Calls  []CallSite
	Allocs []AllocSite
}

// Program is the whole-load view shared by the cross-package checkers:
// every function declared in the loaded packages, indexed and scanned
// once per Run.
type Program struct {
	Pkgs []*Package

	fns      map[*types.Func]*FuncInfo
	fnByName map[string]*FuncInfo
	fnList   []*FuncInfo // deterministic declaration order

	implCache map[string][]*types.Func
	alloc     *allocResult
	ckpt      *ckptResult
}

// NewProgram indexes and scans every function declaration in pkgs.
func NewProgram(pkgs []*Package) *Program {
	p := &Program{
		Pkgs:      pkgs,
		fns:       make(map[*types.Func]*FuncInfo),
		fnByName:  make(map[string]*FuncInfo),
		implCache: make(map[string][]*types.Func),
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				fi := &FuncInfo{Obj: obj, Decl: fd, Pkg: pkg}
				p.fns[obj] = fi
				p.fnByName[obj.FullName()] = fi
				p.fnList = append(p.fnList, fi)
			}
		}
	}
	for _, fi := range p.fnList {
		p.scanFunc(fi)
	}
	return p
}

// FuncOf returns the fact record for fn, canonicalizing across the
// defining/using type-checker split by FullName. Nil when fn's body was
// not loaded (dependency-only package).
func (p *Program) FuncOf(fn *types.Func) *FuncInfo {
	if fi := p.fns[fn]; fi != nil {
		return fi
	}
	return p.fnByName[fn.FullName()]
}

// Funcs returns every scanned function in deterministic order.
func (p *Program) Funcs() []*FuncInfo { return p.fnList }

// scanFunc walks one function body (closures included) recording call
// sites and allocation sites, propagating coldness through return
// statements, panic arguments, and Tracing() gates.
func (p *Program) scanFunc(fi *FuncInfo) {
	if fi.Decl.Body == nil {
		return
	}
	s := &funcScanner{prog: p, fi: fi}
	// The function's final top-level return is the steady-state exit (the
	// `return f(...)` tail-call idiom included); only early returns are
	// treated as cold error/edge paths.
	if list := fi.Decl.Body.List; len(list) > 0 {
		if ret, ok := list[len(list)-1].(*ast.ReturnStmt); ok {
			s.tailReturn = ret
		}
	}
	s.stmtList(fi.Decl.Body.List, false)
}

type funcScanner struct {
	prog *Program
	fi   *FuncInfo
	// ownedSeen breaks cycles when slice-ownership chases mutually
	// defined append chains (a = append(b…); b = append(a…)).
	ownedSeen map[*types.Var]bool
	// tailReturn is the final top-level return statement, whose
	// expressions run on the steady-state path (not the cold error exit).
	tailReturn *ast.ReturnStmt
}

func (s *funcScanner) stmtList(list []ast.Stmt, cold bool) {
	for _, st := range list {
		s.stmt(st, cold)
	}
}

func (s *funcScanner) stmt(st ast.Stmt, cold bool) {
	switch n := st.(type) {
	case nil:
	case *ast.ReturnStmt:
		// Error construction and result packaging in early returns is the
		// cold exit path of otherwise allocation-free kernels; the final
		// return is the steady-state exit and stays hot, so tail calls
		// (`return f(...)`) cannot hide allocations.
		retCold := n != s.tailReturn
		for _, e := range n.Results {
			s.expr(e, retCold || cold)
		}
	case *ast.IfStmt:
		s.stmt(n.Init, cold)
		s.expr(n.Cond, cold)
		bodyCold, elseCold := cold, cold
		if isTracingCall(n.Cond) {
			bodyCold = true // trace emission only runs with the tracer attached
		} else if un, ok := n.Cond.(*ast.UnaryExpr); ok && un.Op == token.NOT && isTracingCall(un.X) {
			elseCold = true
		} else if s.isGrowGuard(n.Cond) {
			// `if cap(buf) < n { buf = make(...) }` is the grow-once idiom:
			// the branch runs on first use (or a cohort-size change), never
			// in steady state. Its allocations are amortized, not per-round.
			bodyCold = true
		}
		s.stmtList(n.Body.List, bodyCold)
		s.stmt(n.Else, elseCold)
	case *ast.BlockStmt:
		s.stmtList(n.List, cold)
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				s.expr(call, true)
				return
			}
		}
		s.expr(n.X, cold)
	case *ast.AssignStmt:
		for _, e := range n.Lhs {
			s.expr(e, cold)
		}
		for _, e := range n.Rhs {
			s.expr(e, cold)
		}
	case *ast.GoStmt:
		s.fi.Allocs = append(s.fi.Allocs, AllocSite{Pos: n.Pos(), Kind: "goroutine launch", Cold: cold})
		s.expr(n.Call, cold)
	case *ast.DeferStmt:
		s.expr(n.Call, cold)
	case *ast.ForStmt:
		s.stmt(n.Init, cold)
		s.expr(n.Cond, cold)
		s.stmt(n.Post, cold)
		s.stmtList(n.Body.List, cold)
	case *ast.RangeStmt:
		s.expr(n.Key, cold)
		s.expr(n.Value, cold)
		s.expr(n.X, cold)
		s.stmtList(n.Body.List, cold)
	case *ast.SwitchStmt:
		s.stmt(n.Init, cold)
		s.expr(n.Tag, cold)
		for _, c := range n.Body.List {
			cc := c.(*ast.CaseClause)
			for _, e := range cc.List {
				s.expr(e, cold)
			}
			s.stmtList(cc.Body, cold)
		}
	case *ast.TypeSwitchStmt:
		s.stmt(n.Init, cold)
		s.stmt(n.Assign, cold)
		for _, c := range n.Body.List {
			s.stmtList(c.(*ast.CaseClause).Body, cold)
		}
	case *ast.SelectStmt:
		for _, c := range n.Body.List {
			cc := c.(*ast.CommClause)
			s.stmt(cc.Comm, cold)
			s.stmtList(cc.Body, cold)
		}
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						s.expr(v, cold)
					}
				}
			}
		}
	case *ast.LabeledStmt:
		s.stmt(n.Stmt, cold)
	case *ast.SendStmt:
		s.expr(n.Chan, cold)
		s.expr(n.Value, cold)
	case *ast.IncDecStmt:
		s.expr(n.X, cold)
	default:
		// Branch, empty: nothing to scan.
	}
}

func (s *funcScanner) expr(e ast.Expr, cold bool) {
	if e == nil {
		return
	}
	switch n := e.(type) {
	case *ast.CallExpr:
		s.call(n, cold)
	case *ast.FuncLit:
		if names := s.captures(n); len(names) > 0 {
			s.fi.Allocs = append(s.fi.Allocs, AllocSite{
				Pos:  n.Pos(),
				Kind: "closure captures " + strings.Join(names, ", "),
				Cold: cold,
			})
		}
		s.stmtList(n.Body.List, cold)
	case *ast.CompositeLit:
		if t := s.fi.Pkg.Info.TypeOf(n); t != nil {
			switch t.Underlying().(type) {
			case *types.Slice:
				s.fi.Allocs = append(s.fi.Allocs, AllocSite{Pos: n.Pos(), Kind: "slice literal", Cold: cold})
			case *types.Map:
				s.fi.Allocs = append(s.fi.Allocs, AllocSite{Pos: n.Pos(), Kind: "map literal", Cold: cold})
			}
		}
		for _, el := range n.Elts {
			s.expr(el, cold)
		}
	case *ast.BinaryExpr:
		if n.Op == token.ADD {
			if tv, ok := s.fi.Pkg.Info.Types[n]; ok && tv.Value == nil && isString(tv.Type) {
				s.fi.Allocs = append(s.fi.Allocs, AllocSite{Pos: n.Pos(), Kind: "string concatenation", Cold: cold})
			}
		}
		s.expr(n.X, cold)
		s.expr(n.Y, cold)
	case *ast.UnaryExpr:
		s.expr(n.X, cold)
	case *ast.StarExpr:
		s.expr(n.X, cold)
	case *ast.ParenExpr:
		s.expr(n.X, cold)
	case *ast.SelectorExpr:
		s.expr(n.X, cold)
	case *ast.IndexExpr:
		s.expr(n.X, cold)
		s.expr(n.Index, cold)
	case *ast.IndexListExpr:
		s.expr(n.X, cold)
	case *ast.SliceExpr:
		s.expr(n.X, cold)
		s.expr(n.Low, cold)
		s.expr(n.High, cold)
		s.expr(n.Max, cold)
	case *ast.TypeAssertExpr:
		s.expr(n.X, cold)
	case *ast.KeyValueExpr:
		s.expr(n.Key, cold)
		s.expr(n.Value, cold)
	default:
		// Ident, literals, types: nothing to scan.
	}
}

// call records a call site (or builtin allocation, or boxing conversion).
func (s *funcScanner) call(call *ast.CallExpr, cold bool) {
	info := s.fi.Pkg.Info
	fun := ast.Unparen(call.Fun)

	// Conversion T(x): allocation only when boxing into an interface.
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		if types.IsInterface(tv.Type) && len(call.Args) == 1 {
			if at := info.TypeOf(call.Args[0]); at != nil && !types.IsInterface(at) && !isUntypedNil(at) {
				s.fi.Allocs = append(s.fi.Allocs, AllocSite{
					Pos: call.Pos(), Kind: "conversion boxes value into interface", Cold: cold,
				})
			}
		}
		for _, a := range call.Args {
			s.expr(a, cold)
		}
		return
	}

	// Builtins.
	if id, ok := fun.(*ast.Ident); ok {
		if tv, ok := info.Types[id]; ok && tv.IsBuiltin() {
			switch id.Name {
			case "make":
				s.fi.Allocs = append(s.fi.Allocs, AllocSite{Pos: call.Pos(), Kind: "make", Cold: cold})
			case "new":
				s.fi.Allocs = append(s.fi.Allocs, AllocSite{Pos: call.Pos(), Kind: "new", Cold: cold})
			case "append":
				if len(call.Args) > 0 && !s.ownedSlice(call.Args[0]) {
					s.fi.Allocs = append(s.fi.Allocs, AllocSite{
						Pos: call.Pos(), Kind: "append grows a locally-allocated slice", Cold: cold,
					})
				}
			case "panic":
				cold = true
			}
			for _, a := range call.Args {
				s.expr(a, cold)
			}
			return
		}
	}

	// Interface boxing at the call boundary: a concrete argument passed to
	// an interface (or ...interface) parameter allocates.
	if sig, ok := info.TypeOf(call.Fun).(*types.Signature); ok {
		s.checkBoxing(call, sig, cold)
	}

	callees, dynamic := s.prog.resolveCall(s.fi.Pkg, call)
	s.fi.Calls = append(s.fi.Calls, CallSite{
		Pos: call.Pos(), Expr: call, Callees: callees, Dynamic: dynamic, Cold: cold,
	})
	s.expr(call.Fun, cold)
	for _, a := range call.Args {
		s.expr(a, cold)
	}
}

// checkBoxing flags concrete arguments passed to interface parameters.
func (s *funcScanner) checkBoxing(call *ast.CallExpr, sig *types.Signature, cold bool) {
	info := s.fi.Pkg.Info
	params := sig.Params()
	np := params.Len()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			if call.Ellipsis.IsValid() {
				pt = params.At(np - 1).Type() // xs... passes the slice whole
			} else if sl, ok := params.At(np - 1).Type().(*types.Slice); ok {
				pt = sl.Elem()
			}
		case i < np:
			pt = params.At(i).Type()
		}
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		at := info.TypeOf(arg)
		if at == nil || types.IsInterface(at) || isUntypedNil(at) || pointerShaped(at) {
			continue
		}
		s.fi.Allocs = append(s.fi.Allocs, AllocSite{
			Pos:  arg.Pos(),
			Kind: fmt.Sprintf("argument %s boxed into interface parameter", types.TypeString(at, shortQualifier)),
			Cold: cold,
		})
	}
}

// resolveCall maps a call expression to its candidate callees.
func (p *Program) resolveCall(pkg *Package, call *ast.CallExpr) (callees []*types.Func, dynamic bool) {
	info := pkg.Info
	fun := ast.Unparen(call.Fun)
	// Generic instantiation f[T](...) resolves through the inner expr.
	switch g := fun.(type) {
	case *ast.IndexExpr:
		fun = ast.Unparen(g.X)
	case *ast.IndexListExpr:
		fun = ast.Unparen(g.X)
	}
	switch f := fun.(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[f].(*types.Func); ok {
			return []*types.Func{fn}, false
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[f]; ok && sel.Kind() == types.MethodVal {
			fn, ok := sel.Obj().(*types.Func)
			if !ok {
				return nil, false
			}
			if sig, ok := fn.Type().(*types.Signature); ok {
				if recv := sig.Recv(); recv != nil && types.IsInterface(recv.Type()) {
					return p.implementers(recv.Type(), fn.Name()), true
				}
			}
			return []*types.Func{fn}, false
		}
		if fn, ok := info.Uses[f.Sel].(*types.Func); ok {
			return []*types.Func{fn}, false // qualified pkg.Func
		}
	}
	return nil, false // call through a func value
}

// implementers is the CHA step: every named type declared in a loaded
// package whose method set satisfies the interface contributes its
// method. An interface named in a loaded package is canonicalized to its
// syntax-checked instance first, so satisfaction checks compare types
// from the same type-checker universe.
func (p *Program) implementers(iface types.Type, method string) []*types.Func {
	if named, ok := iface.(*types.Named); ok {
		obj := named.Obj()
		if obj != nil && obj.Pkg() != nil {
			for _, pkg := range p.Pkgs {
				if pkg.Path == obj.Pkg().Path() {
					if tn, ok := pkg.Types.Scope().Lookup(obj.Name()).(*types.TypeName); ok {
						iface = tn.Type()
					}
					break
				}
			}
		}
	}
	it, ok := iface.Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	key := iface.String() + "\x00" + method
	if cached, ok := p.implCache[key]; ok {
		return cached
	}
	var out []*types.Func
	seen := map[string]bool{}
	for _, pkg := range p.Pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || named.TypeParams().Len() > 0 || types.IsInterface(named) {
				continue
			}
			ptr := types.NewPointer(named)
			if !types.Implements(named, it) && !types.Implements(ptr, it) {
				continue
			}
			obj, _, _ := types.LookupFieldOrMethod(ptr, true, tn.Pkg(), method)
			if fn, ok := obj.(*types.Func); ok && !seen[fn.FullName()] {
				seen[fn.FullName()] = true
				out = append(out, fn)
			}
		}
	}
	p.implCache[key] = out
	return out
}

// captures returns the names (in source order, deduplicated) of
// enclosing-function variables a function literal closes over. A literal
// with no captures compiles to a plain func value and does not allocate.
func (s *funcScanner) captures(lit *ast.FuncLit) []string {
	info := s.fi.Pkg.Info
	outer := s.fi.Decl
	var names []string
	seen := map[types.Object]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := info.Uses[id].(*types.Var)
		if !ok || obj.IsField() || seen[obj] {
			return true
		}
		// Captured ⇔ declared inside the enclosing declaration but outside
		// the literal. Package-level vars are not captures.
		if obj.Pos() >= outer.Pos() && obj.Pos() < outer.End() &&
			(obj.Pos() < lit.Pos() || obj.Pos() >= lit.End()) {
			seen[obj] = true
			names = append(names, obj.Name())
		}
		return true
	})
	return names
}

// ownedSlice reports whether an append destination is backed by storage
// whose growth is amortized outside this call: a struct field, a
// parameter, a package-level var, a call result, or a slice derived from
// one of those. Appending to such destinations is the sanctioned
// grow-once-scratch idiom; appending to a locally-allocated slice grows
// fresh backing every invocation.
func (s *funcScanner) ownedSlice(dst ast.Expr) bool {
	info := s.fi.Pkg.Info
	e := ast.Unparen(dst)
	for {
		switch n := e.(type) {
		case *ast.IndexExpr:
			e = ast.Unparen(n.X)
		case *ast.SliceExpr:
			e = ast.Unparen(n.X)
		case *ast.StarExpr:
			e = ast.Unparen(n.X)
		case *ast.SelectorExpr:
			return true // rooted at a field or imported var
		case *ast.CallExpr:
			return true // call result: owner unknown, assume amortized
		case *ast.Ident:
			obj, ok := info.Uses[n].(*types.Var)
			if !ok {
				if obj2, ok2 := info.Defs[n].(*types.Var); ok2 {
					obj = obj2
				} else {
					return true
				}
			}
			return s.ownedVar(obj)
		default:
			return true
		}
	}
}

// ownedVar inspects every definition of a local variable inside the
// function: if any definition allocates fresh backing (make, literal,
// append chain, or a bare var declaration starting nil), appends into it
// count as growth of a locally-allocated slice.
func (s *funcScanner) ownedVar(obj *types.Var) bool {
	decl := s.fi.Decl
	if obj.Pos() < decl.Pos() || obj.Pos() >= decl.End() {
		return true // captured from an enclosing scope: not ours to judge
	}
	if s.ownedSeen[obj] {
		return true // already being judged higher in the chase; don't cycle
	}
	if s.ownedSeen == nil {
		s.ownedSeen = map[*types.Var]bool{}
	}
	s.ownedSeen[obj] = true
	defer delete(s.ownedSeen, obj)
	// Parameters and receivers are caller-owned.
	if fieldListHas(decl.Recv, s.fi.Pkg, obj) || fieldListHas(decl.Type.Params, s.fi.Pkg, obj) ||
		fieldListHas(decl.Type.Results, s.fi.Pkg, obj) {
		return true
	}
	info := s.fi.Pkg.Info
	owned := true
	found := false
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range st.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok || (info.Defs[id] != obj && info.Uses[id] != obj) {
					continue
				}
				found = true
				if len(st.Rhs) == len(st.Lhs) && !s.ownedRHS(st.Rhs[i]) {
					owned = false
				}
				// Multi-value (call/comma-ok) results: owner unknown, keep owned.
			}
		case *ast.ValueSpec:
			for i, id := range st.Names {
				if info.Defs[id] != obj {
					continue
				}
				found = true
				if len(st.Values) == 0 {
					owned = false // var x []T starts nil; append allocates
				} else if i < len(st.Values) && !s.ownedRHS(st.Values[i]) {
					owned = false
				}
			}
		case *ast.RangeStmt:
			for _, e := range []ast.Expr{st.Key, st.Value} {
				if id, ok := e.(*ast.Ident); ok && info.Defs[id] == obj {
					found = true
				}
			}
		}
		return true
	})
	if !found {
		return true
	}
	return owned
}

// ownedRHS reports whether a defining right-hand side hands over existing
// backing (reslice of a field, parameter pass-through, call result) as
// opposed to allocating fresh backing.
func (s *funcScanner) ownedRHS(e ast.Expr) bool {
	switch n := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return false
	case *ast.CallExpr:
		if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
			switch id.Name {
			case "make":
				return false
			case "append":
				// x = append(y, …) hands over y's backing: the result is
				// locally allocated exactly when y is. The common
				// self-append (x = append(x, …)) is neutral — ownership
				// comes from x's other definitions, and the cycle guard
				// in ownedVar reports it as owned.
				if len(n.Args) > 0 {
					return s.ownedSlice(n.Args[0])
				}
				return false
			}
		}
		return true
	default:
		return true
	}
}

func fieldListHas(fl *ast.FieldList, pkg *Package, obj *types.Var) bool {
	if fl == nil {
		return false
	}
	for _, f := range fl.List {
		for _, name := range f.Names {
			if pkg.Info.Defs[name] == obj {
				return true
			}
		}
	}
	return false
}

// isGrowGuard matches conditions comparing the builtin cap() or len() of
// existing storage (the `if cap(buf) < n` / `if len(s.dev) != dim`
// grow-once idiom): the guarded branch only runs when backing storage
// must be (re)established, never in steady state.
func (s *funcScanner) isGrowGuard(cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || (id.Name != "cap" && id.Name != "len") {
			return true
		}
		if _, isBuiltin := s.fi.Pkg.Info.ObjectOf(id).(*types.Builtin); isBuiltin {
			found = true
		}
		return true
	})
	return found
}

// isTracingCall matches the telemetry cold-path gate `x.Tracing()` (or a
// bare `Tracing()`): the guarded block only runs with a tracer attached.
func isTracingCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return false
	}
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		return f.Sel.Name == "Tracing"
	case *ast.Ident:
		return f.Name == "Tracing"
	}
	return false
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isUntypedNil(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}

// pointerShaped reports whether values of t are stored directly in an
// interface's data word: converting them to an interface never allocates.
func pointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return t.Underlying().(*types.Basic).Kind() == types.UnsafePointer
	}
	return false
}

// shortQualifier renders package-qualified type names with just the
// package name, keeping diagnostic messages (and baseline keys) free of
// machine-specific paths.
func shortQualifier(p *types.Package) string { return p.Name() }

// lookupTypeName finds the *types.TypeName for "pkg/path.Name",
// preferring the syntax-checked instance of a loaded package over the
// export-data instance seen through imports.
func (p *Program) lookupTypeName(full string) *types.TypeName {
	dot := strings.LastIndex(full, ".")
	if dot < 0 {
		return nil
	}
	path, name := full[:dot], full[dot+1:]
	for _, pkg := range p.Pkgs {
		if pkg.Path == path {
			if tn, ok := pkg.Types.Scope().Lookup(name).(*types.TypeName); ok {
				return tn
			}
			return nil
		}
	}
	seen := map[*types.Package]bool{}
	var find func(tp *types.Package) *types.TypeName
	find = func(tp *types.Package) *types.TypeName {
		if tp == nil || seen[tp] {
			return nil
		}
		seen[tp] = true
		if tp.Path() == path {
			if tn, ok := tp.Scope().Lookup(name).(*types.TypeName); ok {
				return tn
			}
			return nil
		}
		for _, imp := range tp.Imports() {
			if tn := find(imp); tn != nil {
				return tn
			}
		}
		return nil
	}
	for _, pkg := range p.Pkgs {
		if tn := find(pkg.Types); tn != nil {
			return tn
		}
	}
	return nil
}

// hasLoadedPackage reports whether the program loaded syntax for path.
func (p *Program) hasLoadedPackage(path string) bool {
	for _, pkg := range p.Pkgs {
		if pkg.Path == path {
			return true
		}
	}
	return false
}

// shortPos renders a position as base-filename:line, stable across
// machines (used inside diagnostic messages and baseline keys).
func (p *Program) shortPos(pkg *Package, pos token.Pos) string {
	ps := pkg.Fset.Position(pos)
	return fmt.Sprintf("%s:%d", filepath.Base(ps.Filename), ps.Line)
}
