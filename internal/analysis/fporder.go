// The fporder checker: float64 reductions must run in a fixed index
// order. Floating-point addition is not associative, so any reduction
// whose visit order can vary — map iteration, channel-receive order,
// goroutine fan-in — silently breaks the bit-identity contract that the
// golden traces and the workers=N equivalence tests pin.
//
// It generalizes maporder (which owns compound assignments inside
// range-over-map) to the remaining reduction shapes:
//
//   - plain self-referential accumulation (`s = s + v`) inside a
//     range-over-map, which the compound-token check misses;
//   - any float accumulation inside a range over a channel, or fed
//     directly from a channel receive (`s += <-ch`): receive order is
//     scheduler-dependent;
//   - float accumulation into a captured variable inside a closure
//     launched by `go` or handed to internal/parallel: goroutine fan-in
//     reorders the reduction. Writes to per-iteration slots
//     (`out[i] = ...` where i is the closure's own parameter) are the
//     sanctioned shape and pass.
//
// internal/parallel itself is exempt by policy: its reducers are the
// sanctioned primitives the rest of the repo is steered toward.
package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

var fporderChecker = &Checker{
	Name: "fporder",
	Doc:  "float reductions iterate in fixed index order: no map/channel-order or goroutine fan-in accumulation",
	Run:  runFporder,
}

func runFporder(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				t := p.TypeOf(n.X)
				if isMapType(t) {
					checkMapRangePlain(p, n)
				} else if isChanType(t) {
					checkChanRange(p, n)
				}
			case *ast.AssignStmt:
				if lhs := accumTarget(p, n, true); lhs != nil && containsRecv(n.Rhs) {
					p.Reportf(n.Pos(), "float accumulation fed by a channel receive: receive order is scheduler-dependent (collect into an indexed slice, then reduce in fixed order)")
				}
			case *ast.GoStmt:
				if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
					checkClosureAccum(p, lit)
				}
			case *ast.CallExpr:
				if calleeInParallel(p, n) {
					for _, arg := range n.Args {
						if lit, ok := arg.(*ast.FuncLit); ok {
							checkClosureAccum(p, lit)
						}
					}
				}
			}
			return true
		})
	}
}

// checkMapRangePlain flags `s = s + v` float accumulation inside a
// range-over-map; the compound-token form is maporder's finding.
func checkMapRangePlain(p *Pass, rs *ast.RangeStmt) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		if lhs := accumTarget(p, as, false); lhs != nil {
			p.Reportf(as.Pos(), "float accumulation inside range over a map: result depends on iteration order (iterate sorted keys or an indexed slice)")
		}
		return true
	})
}

// checkChanRange flags float accumulation inside a range over a channel.
func checkChanRange(p *Pass, rs *ast.RangeStmt) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		if containsRecv(as.Rhs) {
			return true // the standalone receive rule owns this site
		}
		if lhs := accumTarget(p, as, true); lhs != nil {
			p.Reportf(as.Pos(), "float accumulation inside range over a channel: receive order is scheduler-dependent (collect into an indexed slice, then reduce in fixed order)")
		}
		return true
	})
}

// checkClosureAccum flags float accumulation into captured (shared)
// targets inside a concurrently-executed closure. A target is shared
// when no identifier in it resolves to a binding local to the closure —
// `out[i] += v` with i a closure parameter writes a per-iteration slot
// and passes.
func checkClosureAccum(p *Pass, lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		lhs := accumTarget(p, as, true)
		if lhs == nil {
			return true
		}
		localPart := false
		ast.Inspect(lhs, func(m ast.Node) bool {
			id, ok := m.(*ast.Ident)
			if !ok {
				return true
			}
			if obj := p.ObjectOf(id); obj != nil &&
				obj.Pos() >= lit.Pos() && obj.Pos() < lit.End() {
				localPart = true
			}
			return true
		})
		if !localPart {
			p.Reportf(as.Pos(), "float accumulation into captured %s inside a concurrent closure: goroutine fan-in reorders the reduction (accumulate per index, then combine in fixed order)", exprString(lhs))
		}
		return true
	})
}

// accumTarget returns the target of a single-assignment float
// accumulation: `x op= v` (when compound is true) or `x = x op v` with an
// arithmetic op and a self-reference anywhere in the expression.
func accumTarget(p *Pass, as *ast.AssignStmt, compound bool) ast.Expr {
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return nil
	}
	lhs := as.Lhs[0]
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		if compound && isFloat(p.TypeOf(lhs)) {
			return lhs
		}
	case token.ASSIGN:
		be, ok := ast.Unparen(as.Rhs[0]).(*ast.BinaryExpr)
		if !ok || !isFloat(p.TypeOf(lhs)) {
			return nil
		}
		switch be.Op {
		case token.ADD, token.SUB, token.MUL, token.QUO:
		default:
			return nil
		}
		selfRef := false
		ast.Inspect(be, func(m ast.Node) bool {
			if e, ok := m.(ast.Expr); ok && sameExpr(p, lhs, e) {
				selfRef = true
			}
			return true
		})
		if selfRef {
			return lhs
		}
	}
	return nil
}

// containsRecv reports whether any expression contains a channel receive.
func containsRecv(exprs []ast.Expr) bool {
	for _, e := range exprs {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if u, ok := n.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				found = true
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

func isChanType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// calleeInParallel reports whether the call statically resolves into the
// sanctioned worker-pool package (…/internal/parallel).
func calleeInParallel(p *Pass, call *ast.CallExpr) bool {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = p.ObjectOf(fun)
	case *ast.SelectorExpr:
		obj = p.ObjectOf(fun.Sel)
	default:
		return false
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	return strings.HasSuffix(fn.Pkg().Path(), "internal/parallel")
}
