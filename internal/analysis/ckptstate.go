// The ckptstate checker: every struct that registers state with
// internal/checkpoint.Registry must register ALL of its mutable stateful
// fields. The "added a field, forgot to snapshot it" bug class is the
// worst kind of resume divergence — the run restores cleanly, then
// drifts bit-by-bit from the uncheckpointed state — and golden resume
// tests only catch it for fields the test scenario happens to exercise.
//
// Mechanics (on the Program substrate):
//
//   - registration primitives are the Vector/RNG/Int/Float/Dynamic
//     methods of the registry types named in Policy.CkptRegistries;
//     forwarders (same method names, body calls a primitive — e.g.
//     fl.Checkpointer) are detected by fixpoint and count as primitives;
//   - every function that calls a primitive or forwarder is a registrar;
//     the argument expressions of each registration call are walked to
//     mark covered fields, expanding accessor methods, method values,
//     closures, and chasing local variables back through := and range
//     clauses to the fields they alias;
//   - a struct with at least one covered field is checkpoint-registered;
//     its remaining fields are then classified: float64 vectors (nested
//     slices included) and RNG handles are always stateful; plain
//     ints/floats (and int slices) only count when mutated outside the
//     struct's constructors. Stateful-but-uncovered fields are reported
//     at their declaration.
//
// A deliberately unregistered scratch field carries
// //flvet:allow ckptstate -- <reason> on its declaration line.
package analysis

import (
	"go/ast"
	"go/types"
)

var ckptstateChecker = &Checker{
	Name: "ckptstate",
	Doc:  "every mutable stateful field of a checkpoint-registered struct must be covered by a registration call",
	Run:  runCkptstate,
}

var registrationKinds = []string{"Vector", "RNG", "Int", "Float", "Dynamic"}

// ckptResult caches the whole-program registration facts for one Run.
// All keys are strings ("pkg/path.Struct", "pkg/path.Struct.field",
// function FullNames) so facts unify across the per-package type-checker
// instances.
type ckptResult struct {
	prims    map[string]bool        // FullName of registration primitives
	fwd      map[string]bool        // FullName of forwarder methods
	covered  map[string]bool        // "owner.field" covered by a registration
	cand     map[string]bool        // owners with ≥1 registration
	mutators map[string][]*FuncInfo // "owner.field" → functions mutating it
	rngNames map[string]bool        // named types that are RNG handles
}

func runCkptstate(pass *Pass) {
	if pass.Prog == nil {
		return
	}
	res := pass.Prog.ckptFacts(pass.Policy)
	if len(res.prims) == 0 {
		return // no registry type in scope: nothing to enforce
	}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				pass.Prog.checkStruct(pass, ts, st, res)
			}
		}
	}
}

// checkStruct reports the stateful-but-unregistered fields of one
// checkpoint-registered struct declaration.
func (p *Program) checkStruct(pass *Pass, ts *ast.TypeSpec, st *ast.StructType, res *ckptResult) {
	tn, ok := pass.Pkg.Info.Defs[ts.Name].(*types.TypeName)
	if !ok {
		return
	}
	owner := typeKey(tn)
	if !res.cand[owner] {
		return
	}
	short := tn.Pkg().Name() + "." + tn.Name()
	for _, field := range st.Fields.List {
		for _, name := range field.Names {
			fobj, ok := pass.Pkg.Info.Defs[name].(*types.Var)
			if !ok {
				continue
			}
			label, always, stateful := res.fieldKind(fobj.Type())
			if !stateful {
				continue
			}
			fieldKey := owner + "." + name.Name
			if res.covered[fieldKey] {
				continue
			}
			if !always && !res.mutatedOutsideInit(fieldKey, owner) {
				continue
			}
			pass.Reportf(name.Pos(),
				"struct %s registers checkpoint state but %s field %q is never registered — resume would silently reset it",
				short, label, name.Name)
		}
	}
}

// ckptFacts computes registration coverage for the whole program.
func (p *Program) ckptFacts(pol Policy) *ckptResult {
	if p.ckpt != nil {
		return p.ckpt
	}
	res := &ckptResult{
		prims:    map[string]bool{},
		fwd:      map[string]bool{},
		covered:  map[string]bool{},
		cand:     map[string]bool{},
		mutators: map[string][]*FuncInfo{},
		rngNames: map[string]bool{},
	}
	p.ckpt = res

	// 1. Primitives: the five registration methods of each registry type.
	for _, reg := range pol.CkptRegistries {
		tn := p.lookupTypeName(reg)
		if tn == nil {
			continue
		}
		ptr := types.NewPointer(tn.Type())
		for _, kind := range registrationKinds {
			obj, _, _ := types.LookupFieldOrMethod(ptr, true, tn.Pkg(), kind)
			fn, ok := obj.(*types.Func)
			if !ok {
				continue
			}
			res.prims[fn.FullName()] = true
			if kind == "RNG" {
				// The RNG handle type is whatever the primitive takes: a
				// pointer to some named generator type.
				if sig, ok := fn.Type().(*types.Signature); ok && sig.Params().Len() >= 2 {
					if pt, ok := sig.Params().At(1).Type().(*types.Pointer); ok {
						if named, ok := pt.Elem().(*types.Named); ok {
							res.rngNames[typeKey(named.Obj())] = true
						}
					}
				}
			}
		}
	}
	if len(res.prims) == 0 {
		return res
	}

	// 2. Forwarders: registration-named methods whose body reaches a
	// primitive (fixpoint for forwarder-of-forwarder chains).
	isRegName := map[string]bool{}
	for _, k := range registrationKinds {
		isRegName[k] = true
	}
	for changed := true; changed; {
		changed = false
		for _, fi := range p.fnList {
			name := fi.Obj.FullName()
			if fi.Decl.Recv == nil || !isRegName[fi.Obj.Name()] || res.prims[name] || res.fwd[name] {
				continue
			}
			for i := range fi.Calls {
				for _, callee := range fi.Calls[i].Callees {
					cn := callee.FullName()
					if res.prims[cn] || res.fwd[cn] {
						res.fwd[name] = true
						changed = true
					}
				}
			}
		}
	}

	// 3. Coverage: walk every registration call's argument expressions.
	cw := &coverWalker{p: p, res: res}
	for _, fi := range p.fnList {
		name := fi.Obj.FullName()
		if res.prims[name] || res.fwd[name] {
			continue
		}
		for i := range fi.Calls {
			call := &fi.Calls[i]
			reg := false
			for _, callee := range call.Callees {
				cn := callee.FullName()
				if res.prims[cn] || res.fwd[cn] {
					reg = true
				}
			}
			if !reg || call.Expr == nil || len(call.Expr.Args) < 2 {
				continue
			}
			for _, arg := range call.Expr.Args[1:] {
				cw.expr(fi, arg, 0)
			}
		}
	}

	// 4. Mutation sites for the mutation-gated field kinds.
	for _, fi := range p.fnList {
		p.recordMutations(fi, res)
	}
	return res
}

// coverWalker marks fields reachable from registration-call arguments,
// expanding accessor bodies and chasing local aliases.
type coverWalker struct {
	p    *Program
	res  *ckptResult
	seen map[types.Object]bool
}

func (c *coverWalker) expr(fi *FuncInfo, e ast.Expr, depth int) {
	if e == nil || depth > 4 {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SelectorExpr:
			c.selector(fi, x, depth)
		case *ast.CallExpr:
			callees, _ := c.p.resolveCall(fi.Pkg, x)
			for _, callee := range callees {
				c.expand(callee, depth)
			}
		case *ast.Ident:
			c.chase(fi, x, depth)
		}
		return true
	})
}

// selector marks field selections covered and expands method values.
func (c *coverWalker) selector(fi *FuncInfo, sel *ast.SelectorExpr, depth int) {
	s, ok := fi.Pkg.Info.Selections[sel]
	if !ok {
		return
	}
	switch s.Kind() {
	case types.FieldVal:
		if owner, field, ok := fieldKeys(fi.Pkg, sel); ok {
			c.res.covered[field] = true
			// Only a field named in the registration call itself makes its
			// owner a checkpoint-registered struct. Selections inside
			// expanded accessor bodies and alias chases add coverage but
			// not candidacy — otherwise every type an accessor touches
			// (an RNG's own internals, say) would be audited as if it
			// were registered.
			if depth == 0 {
				c.res.cand[owner] = true
			}
		}
	case types.MethodVal:
		if fn, ok := s.Obj().(*types.Func); ok {
			c.expand(fn, depth)
		}
	}
}

// expand walks an accessor/callback body, marking its field selections.
func (c *coverWalker) expand(fn *types.Func, depth int) {
	name := fn.FullName()
	if c.res.prims[name] || c.res.fwd[name] {
		return
	}
	cfi := c.p.FuncOf(fn)
	if cfi == nil || cfi.Decl.Body == nil {
		return
	}
	if c.seen == nil {
		c.seen = map[types.Object]bool{}
	}
	if c.seen[cfi.Obj] {
		return
	}
	c.seen[cfi.Obj] = true
	for _, st := range cfi.Decl.Body.List {
		ast.Inspect(st, func(n ast.Node) bool {
			if sel, ok := n.(*ast.SelectorExpr); ok {
				c.selector(cfi, sel, depth+1)
			}
			return true
		})
	}
}

// chase follows a plain local identifier back through := definitions and
// range clauses to the expression it aliases: the `r` in
// `for _, r := range h.samplers[l]` covers h.samplers.
func (c *coverWalker) chase(fi *FuncInfo, id *ast.Ident, depth int) {
	obj, ok := fi.Pkg.Info.Uses[id].(*types.Var)
	if !ok || obj.IsField() || fi.Decl.Body == nil {
		return
	}
	if obj.Pos() < fi.Decl.Pos() || obj.Pos() >= fi.Decl.End() {
		return // not a local of this registrar
	}
	if c.seen == nil {
		c.seen = map[types.Object]bool{}
	}
	if c.seen[obj] {
		return
	}
	c.seen[obj] = true
	info := fi.Pkg.Info
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range st.Lhs {
				lid, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok || (info.Defs[lid] != obj && info.Uses[lid] != obj) {
					continue
				}
				if len(st.Rhs) == len(st.Lhs) {
					c.expr(fi, st.Rhs[i], depth+1)
				} else if len(st.Rhs) == 1 {
					c.expr(fi, st.Rhs[0], depth+1)
				}
			}
		case *ast.RangeStmt:
			for _, e := range []ast.Expr{st.Key, st.Value} {
				if rid, ok := e.(*ast.Ident); ok && info.Defs[rid] == obj {
					c.expr(fi, st.X, depth+1)
				}
			}
		case *ast.ValueSpec:
			for i, vid := range st.Names {
				if info.Defs[vid] == obj && i < len(st.Values) {
					c.expr(fi, st.Values[i], depth+1)
				}
			}
		}
		return true
	})
}

// recordMutations collects field assignment/increment/address-taken sites
// for the mutation-gated candidate kinds.
func (p *Program) recordMutations(fi *FuncInfo, res *ckptResult) {
	if fi.Decl.Body == nil {
		return
	}
	mark := func(e ast.Expr) {
		for {
			switch x := ast.Unparen(e).(type) {
			case *ast.IndexExpr:
				e = x.X
			case *ast.SliceExpr:
				e = x.X
			case *ast.StarExpr:
				e = x.X
			case *ast.SelectorExpr:
				if _, field, ok := fieldKeys(fi.Pkg, x); ok {
					res.mutators[field] = append(res.mutators[field], fi)
				}
				return
			default:
				return
			}
		}
	}
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				mark(lhs)
			}
		case *ast.IncDecStmt:
			mark(st.X)
		case *ast.UnaryExpr:
			if st.Op.String() == "&" {
				mark(st.X)
			}
		}
		return true
	})
}

// mutatedOutsideInit reports whether any non-constructor function mutates
// the field. Constructors (functions returning the owner type) setting
// initial values do not make a field "mutable state".
func (res *ckptResult) mutatedOutsideInit(fieldKey, owner string) bool {
	for _, fi := range res.mutators[fieldKey] {
		if !constructs(fi, owner) {
			return true
		}
	}
	return false
}

// constructs reports whether fi returns the owner type (by value or
// pointer) — the constructor heuristic.
func constructs(fi *FuncInfo, owner string) bool {
	sig, ok := fi.Obj.Type().(*types.Signature)
	if !ok {
		return false
	}
	results := sig.Results()
	for i := 0; i < results.Len(); i++ {
		t := results.At(i).Type()
		if pt, ok := t.(*types.Pointer); ok {
			t = pt.Elem()
		}
		if named, ok := t.(*types.Named); ok && typeKey(named.Obj()) == owner {
			return true
		}
	}
	return false
}

// fieldKind classifies a field type: (label, always-stateful, stateful).
// Vector-like and RNG-handle fields are stateful unconditionally; scalar
// ints/floats and int slices only when mutated outside init.
func (res *ckptResult) fieldKind(t types.Type) (string, bool, bool) {
	u := t.Underlying()
	if pt, ok := u.(*types.Pointer); ok {
		if named, ok := pt.Elem().(*types.Named); ok && res.rngNames[typeKey(named.Obj())] {
			return "RNG-handle", true, true
		}
		return "", false, false
	}
	// Peel slice/map layers down to the element leaf.
	leaf, dims, viaMap := t, 0, false
	for {
		switch lu := leaf.Underlying().(type) {
		case *types.Slice:
			leaf = lu.Elem()
			dims++
			continue
		case *types.Map:
			leaf = lu.Elem()
			dims++
			viaMap = true
			continue
		}
		break
	}
	if dims > 0 {
		if pt, ok := leaf.Underlying().(*types.Pointer); ok {
			if named, ok := pt.Elem().(*types.Named); ok && res.rngNames[typeKey(named.Obj())] {
				return "RNG-handle", true, true
			}
			return "", false, false
		}
		if b, ok := leaf.Underlying().(*types.Basic); ok {
			switch {
			case b.Info()&types.IsFloat != 0:
				if viaMap {
					return "float-state map", true, true
				}
				return "vector-state", true, true
			case b.Info()&types.IsInteger != 0 && !viaMap:
				return "counter-vector", false, true
			}
		}
		return "", false, false
	}
	if b, ok := u.(*types.Basic); ok {
		switch {
		case b.Info()&types.IsFloat != 0:
			return "scalar-state", false, true
		case b.Info()&types.IsInteger != 0 && b.Kind() != types.Uintptr:
			return "counter", false, true
		}
	}
	return "", false, false
}

// fieldKeys derives the ("pkg.Owner", "pkg.Owner.field") coverage keys
// for a field selection.
func fieldKeys(pkg *Package, sel *ast.SelectorExpr) (owner, field string, ok bool) {
	s, found := pkg.Info.Selections[sel]
	if !found || s.Kind() != types.FieldVal {
		return "", "", false
	}
	xt := pkg.Info.TypeOf(sel.X)
	for {
		if pt, isPtr := xt.(*types.Pointer); isPtr {
			xt = pt.Elem()
			continue
		}
		break
	}
	named, isNamed := xt.(*types.Named)
	if !isNamed {
		return "", "", false
	}
	owner = typeKey(named.Obj())
	return owner, owner + "." + sel.Sel.Name, true
}

// typeKey renders a TypeName as "pkg/path.Name", identical across
// type-checker instances.
func typeKey(obj *types.TypeName) string {
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}
