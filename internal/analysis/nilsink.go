package analysis

import (
	"go/ast"
	"go/token"
)

// nilsink: the telemetry contract is that a nil sink/instrument is fully
// functional and free — hot loops call sink.M().WorkerSteps.Inc() with no
// "is telemetry on" branch, and the golden bit-identity tests rely on the
// nil path having zero effect. Every exported pointer-receiver method on
// the instrument types must therefore begin with a nil-receiver guard
// (either `if recv == nil { ... }` or a `return recv != nil && ...`
// one-liner).
var nilsinkChecker = &Checker{
	Name: "nilsink",
	Doc:  "telemetry instrument methods must begin with a nil-receiver guard",
	Run:  runNilsink,
}

func runNilsink(p *Pass) {
	guardTypes := map[string]bool{}
	for _, name := range p.Policy.NilGuardTypes {
		guardTypes[name] = true
	}
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			tname, ptr := receiverType(fd)
			if !ptr || !guardTypes[tname] {
				continue
			}
			recv := receiverName(fd)
			if recv == "" || len(fd.Body.List) == 0 || !startsWithNilGuard(fd.Body.List[0], recv) {
				p.Reportf(fd.Pos(), "method (*%s).%s must begin with a nil-receiver guard: nil instruments are the telemetry-off fast path", tname, fd.Name.Name)
			}
		}
	}
}

// receiverType returns the receiver's named type and whether it is a
// pointer receiver.
func receiverType(fd *ast.FuncDecl) (name string, ptr bool) {
	if len(fd.Recv.List) == 0 {
		return "", false
	}
	t := fd.Recv.List[0].Type
	star, ok := t.(*ast.StarExpr)
	if !ok {
		return "", false
	}
	switch e := star.X.(type) {
	case *ast.Ident:
		return e.Name, true
	case *ast.IndexExpr: // generic receiver
		if id, ok := e.X.(*ast.Ident); ok {
			return id.Name, true
		}
	}
	return "", true
}

// receiverName returns the receiver variable's name ("" when unnamed — an
// unnamed receiver cannot be nil-checked).
func receiverName(fd *ast.FuncDecl) string {
	if len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return ""
	}
	name := fd.Recv.List[0].Names[0].Name
	if name == "_" {
		return ""
	}
	return name
}

// startsWithNilGuard accepts the two guard shapes the codebase uses:
//
//	if recv == nil { return ... }        // early exit
//	return recv != nil && <rest>         // boolean one-liner
func startsWithNilGuard(stmt ast.Stmt, recv string) bool {
	switch s := stmt.(type) {
	case *ast.IfStmt:
		return mentionsNilCompare(s.Cond, recv, token.EQL)
	case *ast.ReturnStmt:
		for _, res := range s.Results {
			if mentionsNilCompare(res, recv, token.NEQ) || mentionsNilCompare(res, recv, token.EQL) {
				return true
			}
		}
	}
	return false
}

// mentionsNilCompare reports whether e contains `recv <op> nil` (either
// operand order).
func mentionsNilCompare(e ast.Expr, recv string, op token.Token) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || be.Op != op {
			return true
		}
		if (isIdent(be.X, recv) && isIdent(be.Y, "nil")) || (isIdent(be.Y, recv) && isIdent(be.X, "nil")) {
			found = true
		}
		return true
	})
	return found
}

func isIdent(e ast.Expr, name string) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == name
}
