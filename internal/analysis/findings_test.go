package analysis

import (
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func fakeFinding(file, checker, msg string) Finding {
	return Finding{File: file, Line: 1, Col: 1, Checker: checker, Message: msg}
}

// TestFindingsOfRelativizes keeps JSON artifacts machine-independent:
// paths under relTo become slash-separated relative paths, paths outside
// stay absolute.
func TestFindingsOfRelativizes(t *testing.T) {
	diags := []Diagnostic{
		{Pos: token.Position{Filename: filepath.Join("/repo", "internal", "core", "a.go"), Line: 3, Column: 7},
			Checker: "detwall", Message: "m"},
		{Pos: token.Position{Filename: "/elsewhere/b.go", Line: 1, Column: 1},
			Checker: "detwall", Message: "m"},
	}
	fs := FindingsOf(diags, "/repo")
	if fs[0].File != "internal/core/a.go" {
		t.Errorf("relative path = %q", fs[0].File)
	}
	if fs[0].Line != 3 || fs[0].Col != 7 {
		t.Errorf("position = %d:%d, want 3:7", fs[0].Line, fs[0].Col)
	}
	if fs[1].File != "/elsewhere/b.go" {
		t.Errorf("outside path = %q, want untouched", fs[1].File)
	}
}

// TestBaselineRatchet exercises the multiset semantics end-to-end:
// covered findings pass, extra occurrences of a known class are fresh,
// and fixed classes surface as stale slots.
func TestBaselineRatchet(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "base.json")
	base := []Finding{
		fakeFinding("a.go", "maporder", "msg1"),
		fakeFinding("a.go", "maporder", "msg1"), // same class twice → count 2
		fakeFinding("b.go", "detwall", "msg2"),
	}
	if err := WriteBaseline(path, base); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if n := loaded[baselineKey("a.go", "maporder", "msg1")]; n != 2 {
		t.Errorf("aggregated count = %d, want 2", n)
	}

	// Current run: one msg1 fixed, msg2 still present, one brand-new.
	now := []Finding{
		fakeFinding("a.go", "maporder", "msg1"),
		fakeFinding("b.go", "detwall", "msg2"),
		fakeFinding("c.go", "goexec", "msg3"),
	}
	fresh, stale := ApplyBaseline(now, loaded)
	if len(fresh) != 1 || fresh[0].File != "c.go" {
		t.Errorf("fresh = %v, want only c.go", fresh)
	}
	if stale != 1 {
		t.Errorf("stale = %d, want 1 (the fixed msg1 slot)", stale)
	}

	// A fully-covered run is clean with nothing stale.
	fresh, stale = ApplyBaseline(base, loaded)
	if len(fresh) != 0 || stale != 0 {
		t.Errorf("covered run: fresh=%v stale=%d, want none", fresh, stale)
	}
}

// TestLoadBaselineErrors pins the hard-error contract: a baseline that
// cannot be read is never an empty baseline.
func TestLoadBaselineErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := LoadBaseline(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing baseline loaded without error")
	} else if !strings.Contains(err.Error(), "-write-baseline") {
		t.Errorf("missing-file error %q lacks the -write-baseline hint", err)
	}

	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{oops"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBaseline(bad); err == nil || !strings.Contains(err.Error(), "malformed") {
		t.Errorf("malformed baseline error = %v", err)
	}

	zero := filepath.Join(dir, "zero.json")
	if err := os.WriteFile(zero, []byte(`{"findings":[{"file":"a.go","checker":"detwall","message":"m","count":0}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBaseline(zero); err == nil || !strings.Contains(err.Error(), "non-positive") {
		t.Errorf("zero-count baseline error = %v", err)
	}
}

// TestMarshalFindingsEmpty keeps `flvet -json` emitting a JSON array —
// never "null" — when the tree is clean.
func TestMarshalFindingsEmpty(t *testing.T) {
	data, err := MarshalFindings(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(string(data)); got != "[]" {
		t.Errorf("empty findings marshal to %q, want []", got)
	}
}
