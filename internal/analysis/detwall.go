package analysis

import (
	"go/ast"
	"go/types"
	"strconv"
)

// detwall: determinism-critical packages must not read the wall clock or
// the global math/rand stream. Wall-clock feeding a trace or a training
// decision breaks byte-diffable golden runs; unseeded randomness breaks
// bit-identical resume. The cluster and transport packages, whose timeout
// machinery is wall-clock by definition, are exempted by policy; anything
// else (e.g. histogram timings in core) must carry an explicit
// //flvet:allow with its reason.
var detwallChecker = &Checker{
	Name: "detwall",
	Doc:  "no time.Now/time.Since/time.Until or math/rand in determinism-critical packages",
	Run:  runDetwall,
}

// bannedTimeFuncs are the wall-clock readers; time.Duration arithmetic and
// timers gated behind the cluster policy are fine elsewhere.
var bannedTimeFuncs = map[string]string{
	"time.Now":   "reads the wall clock",
	"time.Since": "reads the wall clock",
	"time.Until": "reads the wall clock",
}

func runDetwall(p *Pass) {
	for _, f := range p.Pkg.Files {
		for _, spec := range f.Imports {
			path, err := strconv.Unquote(spec.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				p.Reportf(spec.Pos(), "import of %s in determinism-critical package %s (use internal/rng, which is seeded and snapshotable)", path, p.Pkg.Path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := p.ObjectOf(sel.Sel).(*types.Func)
			if !ok {
				return true
			}
			if why, banned := bannedTimeFuncs[fn.FullName()]; banned {
				p.Reportf(sel.Pos(), "%s %s in determinism-critical package %s (wall-clock must never feed traces or training state)", fn.FullName(), why, p.Pkg.Path)
			}
			return true
		})
	}
}
