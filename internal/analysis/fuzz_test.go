package analysis

import (
	"errors"
	"strings"
	"testing"
)

// FuzzAllowDirective feeds arbitrary comment bytes through the
// //flvet:allow parser: every input must yield either a well-formed
// directive (known checkers, at least one) or exactly one of the typed
// sentinel errors — and must never panic. The parser fronts every
// comment in the module on every flvet run, so its total behavior is a
// lint-reliability invariant, not a nicety.
func FuzzAllowDirective(f *testing.F) {
	f.Add("//flvet:allow detwall -- timestamp feeds the log line only")
	f.Add("//flvet:allow detwall,maporder -- two checkers, one reason")
	f.Add("//flvet:allow")
	f.Add("//flvet:allow  -- reason with no checkers")
	f.Add("//flvet:allow nosuchchecker -- reason")
	f.Add("//flvet:allow detwall,nosuch -- mixed known and unknown")
	f.Add("//flvet:allowextra detwall -- longer token is not ours")
	f.Add("// ordinary comment")
	f.Add("//flvet:allow detwall --")
	f.Add("//flvet:allow ,,,, -- commas only")
	f.Add("//flvet:allow detwall -- a -- b -- c")
	f.Add("//flvet:allow\t detwall \t-- tabs")
	f.Add("//flvet:allow \x00\xff -- control bytes")
	f.Fuzz(func(t *testing.T, text string) {
		checkers, err := ParseAllowDirective(text)
		if err == nil {
			if len(checkers) == 0 {
				t.Fatalf("nil error with no checkers for %q", text)
			}
			for _, name := range checkers {
				if !checkerKnown(name) {
					t.Fatalf("accepted unknown checker %q from %q", name, text)
				}
				if strings.TrimSpace(name) != name || name == "" {
					t.Fatalf("unnormalized checker %q from %q", name, text)
				}
			}
			if !strings.HasPrefix(text, directivePrefix) {
				t.Fatalf("accepted input without the directive prefix: %q", text)
			}
			return
		}
		sentinels := 0
		for _, s := range []error{ErrNotDirective, ErrMalformedDirective, ErrUnknownChecker, ErrNoCheckers} {
			if errors.Is(err, s) {
				sentinels++
			}
		}
		if sentinels != 1 {
			t.Fatalf("error %v for %q wraps %d sentinels, want exactly 1", err, text, sentinels)
		}
		// Unknown-checker errors may still carry the valid names so the
		// directive machinery can keep them; everything else returns none.
		if !errors.Is(err, ErrUnknownChecker) && len(checkers) != 0 {
			t.Fatalf("non-recoverable error %v for %q returned checkers %v", err, text, checkers)
		}
	})
}
