package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// wirealloc: in packages that decode wire or snapshot bytes, a make()
// sized by anything other than a constant, a len/cap of in-memory data, or
// a value that has passed a bounds check is an allocation an attacker (or
// a corrupt file) controls — the exact class FuzzOpenSnapshot caught in
// the PR 4 checkpoint decoder. The checker accepts a size expression
// built from constants, len/cap, and min(); any other size must appear in
// a comparison (an if-statement bounds check) earlier in the function.
var wireallocChecker = &Checker{
	Name: "wirealloc",
	Doc:  "no make() sized from decoded length fields without a preceding bounds check",
	Run:  runWirealloc,
}

func runWirealloc(p *Pass) {
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkAllocs(p, fd)
		}
	}
}

func checkAllocs(p *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) < 2 {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "make" || p.ObjectOf(id) != types.Universe.Lookup("make") {
			return true
		}
		for _, size := range call.Args[1:] {
			if boundedExpr(p, size) {
				continue
			}
			roots := rootVars(p, size)
			if len(roots) == 0 || !guardedBefore(p, fd, call.Pos(), roots) {
				p.Reportf(size.Pos(), "make() sized by %s without a bounds check: a decoded length field must be validated before it sizes an allocation", exprString(size))
			}
		}
		return true
	})
}

// boundedExpr reports whether a size expression cannot exceed data already
// in memory: constants, len/cap calls, min() over at least one bounded
// argument, conversions of bounded expressions, and arithmetic over
// bounded operands.
func boundedExpr(p *Pass, e ast.Expr) bool {
	if tv, ok := p.Pkg.Info.Types[e]; ok && tv.Value != nil {
		return true // compile-time constant
	}
	switch e := e.(type) {
	case *ast.ParenExpr:
		return boundedExpr(p, e.X)
	case *ast.UnaryExpr:
		return boundedExpr(p, e.X)
	case *ast.BinaryExpr:
		return boundedExpr(p, e.X) && boundedExpr(p, e.Y)
	case *ast.CallExpr:
		if id, ok := e.Fun.(*ast.Ident); ok {
			switch p.ObjectOf(id) {
			case types.Universe.Lookup("len"), types.Universe.Lookup("cap"):
				return true
			case types.Universe.Lookup("min"):
				for _, arg := range e.Args {
					if boundedExpr(p, arg) {
						return true
					}
				}
				return false
			}
		}
		// A conversion of a bounded expression stays bounded.
		if tv, ok := p.Pkg.Info.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
			return boundedExpr(p, e.Args[0])
		}
	}
	return false
}

// rootVars collects the variables a size expression is computed from.
func rootVars(p *Pass, e ast.Expr) []types.Object {
	var roots []types.Object
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if v, ok := p.ObjectOf(id).(*types.Var); ok {
				roots = append(roots, v)
			}
		}
		return true
	})
	return roots
}

// guardedBefore reports whether, before pos inside fd, some if-statement
// compares one of the root variables against a bound (<, <=, >, >=). This
// is a heuristic — it does not prove the branch rejects bad values — but
// it exactly matches the decoder idiom ("if n > maxLen { return ErrFormat }")
// and makes the unchecked path impossible to write silently.
func guardedBefore(p *Pass, fd *ast.FuncDecl, pos token.Pos, roots []types.Object) bool {
	guarded := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok || ifs.Pos() >= pos || guarded {
			return !guarded
		}
		ast.Inspect(ifs.Cond, func(c ast.Node) bool {
			be, ok := c.(*ast.BinaryExpr)
			if !ok {
				return true
			}
			switch be.Op {
			case token.LSS, token.LEQ, token.GTR, token.GEQ:
			default:
				return true
			}
			for _, side := range []ast.Expr{be.X, be.Y} {
				ast.Inspect(side, func(s ast.Node) bool {
					id, ok := s.(*ast.Ident)
					if !ok {
						return true
					}
					obj := p.ObjectOf(id)
					for _, r := range roots {
						if obj == r {
							guarded = true
						}
					}
					return true
				})
			}
			return true
		})
		return !guarded
	})
	return guarded
}
