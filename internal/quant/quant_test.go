package quant

import (
	"errors"
	"math"
	"testing"

	"hieradmo/internal/tensor"
)

func TestNewValidation(t *testing.T) {
	for _, bad := range []int{0, 1, 9, -3} {
		if _, err := New(bad, 1); !errors.Is(err, ErrBits) {
			t.Errorf("bits=%d err = %v, want ErrBits", bad, err)
		}
	}
	q, err := New(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if q.Bits() != 4 {
		t.Errorf("Bits = %d", q.Bits())
	}
}

func TestEncodeDecodeBounds(t *testing.T) {
	q, err := New(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	v := tensor.Vector{1, -1, 0.5, -0.25, 0}
	e := q.Encode(v)
	if e.Scale != 1 {
		t.Errorf("scale = %v", e.Scale)
	}
	dst := tensor.NewVector(len(v))
	if err := q.Decode(e, dst); err != nil {
		t.Fatal(err)
	}
	// Reconstruction error per element is bounded by one quantization step.
	step := e.Scale / 7 // 4 bits → levels = 7
	for i := range v {
		if math.Abs(dst[i]-v[i]) > step+1e-12 {
			t.Errorf("element %d: %v vs %v (step %v)", i, dst[i], v[i], step)
		}
	}
}

func TestDecodeDimCheck(t *testing.T) {
	q, err := New(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	e := q.Encode(tensor.Vector{1, 2})
	if err := q.Decode(e, tensor.NewVector(3)); !errors.Is(err, tensor.ErrDimMismatch) {
		t.Errorf("err = %v", err)
	}
}

func TestZeroVector(t *testing.T) {
	q, err := New(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	v := tensor.NewVector(10)
	e := q.Encode(v)
	if e.Scale != 0 {
		t.Errorf("zero vector scale = %v", e.Scale)
	}
	dst := tensor.Vector{1, 1, 1, 1, 1, 1, 1, 1, 1, 1}
	if err := q.Decode(e, dst); err != nil {
		t.Fatal(err)
	}
	if dst.Norm() != 0 {
		t.Error("zero vector did not decode to zero")
	}
}

func TestUnbiasedness(t *testing.T) {
	// Stochastic rounding must be unbiased: averaging many round trips of
	// the same vector recovers it.
	q, err := New(3, 7)
	if err != nil {
		t.Fatal(err)
	}
	v := tensor.Vector{0.7, -0.31, 0.05, 0.99, -0.99}
	mean := tensor.NewVector(len(v))
	const n = 20000
	dst := tensor.NewVector(len(v))
	for trial := 0; trial < n; trial++ {
		e := q.Encode(v)
		if err := q.Decode(e, dst); err != nil {
			t.Fatal(err)
		}
		if err := mean.Add(dst); err != nil {
			t.Fatal(err)
		}
	}
	mean.Scale(1.0 / n)
	for i := range v {
		if math.Abs(mean[i]-v[i]) > 0.01 {
			t.Errorf("element %d biased: mean %v vs true %v", i, mean[i], v[i])
		}
	}
}

func TestRoundtripInPlace(t *testing.T) {
	q, err := New(8, 11)
	if err != nil {
		t.Fatal(err)
	}
	v := tensor.Vector{0.5, -0.5, 0.123}
	orig := v.Clone()
	q.Roundtrip(v)
	step := orig.MaxAbs() / 127
	for i := range v {
		if math.Abs(v[i]-orig[i]) > step+1e-12 {
			t.Errorf("roundtrip error at %d exceeds one step", i)
		}
	}
}

func TestWireBytesAndRatio(t *testing.T) {
	q, err := New(8, 1)
	if err != nil {
		t.Fatal(err)
	}
	e := q.Encode(tensor.NewVector(1000))
	if e.WireBytes() != 1008 {
		t.Errorf("WireBytes = %d, want 1008", e.WireBytes())
	}
	ratio := q.CompressionRatio(1000)
	if ratio < 7.9 || ratio > 8 {
		t.Errorf("ratio = %v, want ~7.94", ratio)
	}
	if q.CompressionRatio(0) != 1 {
		t.Error("empty ratio should be 1")
	}
}

func TestHigherBitsLowerError(t *testing.T) {
	v := tensor.NewVector(500)
	for i := range v {
		v[i] = math.Sin(float64(i) * 0.37)
	}
	errAt := func(bits int) float64 {
		q, err := New(bits, 13)
		if err != nil {
			t.Fatal(err)
		}
		dst := tensor.NewVector(len(v))
		e := q.Encode(v)
		if err := q.Decode(e, dst); err != nil {
			t.Fatal(err)
		}
		d, err := tensor.Dist(dst, v)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	if errAt(8) >= errAt(2) {
		t.Errorf("8-bit error %v not below 2-bit error %v", errAt(8), errAt(2))
	}
}
