// Package quant implements lossy gradient/model compression for the uplink,
// the standard communication-efficiency companion to hierarchical FL (the
// paper's related work studies hierarchical FL with quantization). The
// compressor is a QSGD-style uniform stochastic quantizer: values are
// scaled by the vector's max magnitude, rounded stochastically onto a
// (2^{bits-1}) level grid per sign, and shipped as small integers plus one
// scale factor.
//
// Stochastic rounding keeps the quantizer unbiased (E[decode(encode(v))] =
// v), which is what lets momentum-based methods tolerate it.
package quant

import (
	"errors"
	"fmt"
	"math"

	"hieradmo/internal/rng"
	"hieradmo/internal/tensor"
)

// ErrBits is returned for unsupported bit widths.
var ErrBits = errors.New("quant: bits must be in [2, 8]")

// Quantizer compresses vectors to a fixed number of bits per element.
type Quantizer struct {
	bits   int
	levels float64
	r      *rng.RNG
	// scratch is Roundtrip's reusable encoding: its code buffer grows once
	// to the model size, so the steady-state round loop never allocates a
	// payload. It is derived (refilled on every Roundtrip), not state —
	// only the rounding stream r needs checkpointing.
	scratch Encoded
}

// New returns a quantizer with the given bit width (2–8 bits per element;
// one bit of the budget encodes the sign) and a seeded rounding stream.
func New(bits int, seed uint64) (*Quantizer, error) {
	if bits < 2 || bits > 8 {
		return nil, fmt.Errorf("%w: got %d", ErrBits, bits)
	}
	return &Quantizer{
		bits:   bits,
		levels: float64(int(1)<<(bits-1)) - 1,
		r:      rng.New(seed).Split(0x9b17),
	}, nil
}

// Bits returns the configured width.
func (q *Quantizer) Bits() int { return q.bits }

// RNG exposes the stochastic-rounding stream so checkpointing can capture
// and restore its position for bit-exact resume.
func (q *Quantizer) RNG() *rng.RNG { return q.r }

// Encoded is a compressed vector: int8 codes in [-levels, levels] plus the
// scale that maps code "levels" back to the vector's max magnitude.
type Encoded struct {
	Scale float64
	Codes []int8
}

// WireBytes returns the over-the-network size: one float64 scale plus one
// byte per element (codes are byte-aligned regardless of the logical bit
// width; sub-byte packing would shrink this further but complicate the
// accounting without changing the experiment's shape).
func (e *Encoded) WireBytes() int { return 8 + len(e.Codes) }

// Encode compresses v into a fresh encoding. The zero vector encodes with
// Scale 0.
func (q *Quantizer) Encode(v tensor.Vector) *Encoded {
	out := &Encoded{}
	q.EncodeInto(v, out)
	return out
}

// EncodeInto compresses v into e, reusing e's code buffer when its
// capacity suffices and growing it otherwise. Feeding the same encoding
// back in makes every encode after the first allocation-free; the RNG
// consumption is identical to Encode.
func (q *Quantizer) EncodeInto(v tensor.Vector, e *Encoded) {
	if cap(e.Codes) < len(v) {
		e.Codes = make([]int8, len(v))
	}
	e.Codes = e.Codes[:len(v)]
	maxAbs := v.MaxAbs()
	e.Scale = maxAbs
	if maxAbs == 0 {
		for i := range e.Codes {
			e.Codes[i] = 0
		}
		return
	}
	inv := q.levels / maxAbs
	for i, x := range v {
		scaled := x * inv // in [-levels, levels]
		floor := math.Floor(scaled)
		frac := scaled - floor
		code := floor
		if q.r.Float64() < frac {
			code++
		}
		if code > q.levels {
			code = q.levels
		}
		if code < -q.levels {
			code = -q.levels
		}
		e.Codes[i] = int8(code)
	}
}

// Decode reconstructs an approximation of the original vector into dst.
func (q *Quantizer) Decode(e *Encoded, dst tensor.Vector) error {
	if len(dst) != len(e.Codes) {
		return fmt.Errorf("quant: decode %d codes into %d values: %w",
			len(e.Codes), len(dst), tensor.ErrDimMismatch)
	}
	if e.Scale == 0 {
		dst.Zero()
		return nil
	}
	scale := e.Scale / q.levels
	for i, c := range e.Codes {
		dst[i] = float64(c) * scale
	}
	return nil
}

// Roundtrip quantizes v in place (encode followed by decode), the form the
// training loop uses to simulate a lossy uplink.
func (q *Quantizer) Roundtrip(v tensor.Vector) {
	q.EncodeInto(v, &q.scratch)
	// Decode cannot fail here: dst length equals the code length.
	_ = q.Decode(&q.scratch, v)
}

// CompressionRatio returns the wire-size ratio of the raw float64 encoding
// to the quantized encoding for a vector of length n.
func (q *Quantizer) CompressionRatio(n int) float64 {
	if n == 0 {
		return 1
	}
	raw := float64(8 * n)
	enc := float64((&Encoded{Codes: make([]int8, n)}).WireBytes())
	return raw / enc
}
