// Package model defines the learning models used in the paper's evaluation
// and the Model interface the federated-learning algorithms train against.
//
// All five paper models are provided: linear regression (MSE loss), logistic
// regression (cross-entropy), a classic small CNN, a VGG-style deeper
// convolutional stack ("VGG-mini"), and a ResNet-style network with residual
// blocks ("ResNet-mini"). The deep models are laptop-scale stand-ins for
// VGG16/ResNet18 — same architectural family, reduced width/depth (see
// DESIGN.md §1).
package model

import (
	"fmt"

	"hieradmo/internal/dataset"
	"hieradmo/internal/nn"
	"hieradmo/internal/parallel"
	"hieradmo/internal/rng"
	"hieradmo/internal/tensor"
)

// Model is the training surface the FL algorithms operate on: a
// differentiable loss over a flat parameter vector.
type Model interface {
	// Name identifies the model for reports.
	Name() string
	// Dim is the parameter count.
	Dim() int
	// Init draws fresh initial parameters.
	Init(r *rng.RNG) tensor.Vector
	// LossGrad returns the mean loss over batch and overwrites grad with the
	// mean parameter gradient.
	LossGrad(params tensor.Vector, batch []dataset.Sample, grad tensor.Vector) (float64, error)
	// Loss returns the mean loss over batch without computing gradients.
	Loss(params tensor.Vector, batch []dataset.Sample) (float64, error)
	// Predict returns the predicted class for one input.
	Predict(params tensor.Vector, x tensor.Vector) (int, error)
}

// NetModel adapts an nn.Network to the Model interface.
type NetModel struct {
	name     string
	net      *nn.Network
	zeroInit bool
}

var _ Model = (*NetModel)(nil)

// NewNetModel wraps net under the given report name.
func NewNetModel(name string, net *nn.Network) *NetModel {
	return &NetModel{name: name, net: net}
}

// NewZeroInitNetModel wraps net with all-zero initial parameters, the
// conventional start for convex models (linear/logistic regression). It also
// grounds the paper's eq. (6): from a zero start, Σy tracks the accumulated
// update direction, making the adaptation angle a momentum/gradient
// agreement signal.
func NewZeroInitNetModel(name string, net *nn.Network) *NetModel {
	return &NetModel{name: name, net: net, zeroInit: true}
}

// Name implements Model.
func (m *NetModel) Name() string { return m.name }

// Dim implements Model.
func (m *NetModel) Dim() int { return m.net.Dim() }

// Network exposes the underlying network (used by tests and diagnostics).
func (m *NetModel) Network() *nn.Network { return m.net }

// Init implements Model.
func (m *NetModel) Init(r *rng.RNG) tensor.Vector {
	if m.zeroInit {
		return tensor.NewVector(m.net.Dim())
	}
	return m.net.Init(r)
}

// LossGrad implements Model.
func (m *NetModel) LossGrad(params tensor.Vector, batch []dataset.Sample, grad tensor.Vector) (float64, error) {
	if len(batch) == 0 {
		return 0, fmt.Errorf("model %s: empty batch", m.name)
	}
	grad.Zero()
	var total float64
	for _, s := range batch {
		loss, err := m.net.LossGrad(params, s.X, s.Label, grad)
		if err != nil {
			return 0, fmt.Errorf("model %s: %w", m.name, err)
		}
		total += loss
	}
	inv := 1 / float64(len(batch))
	grad.Scale(inv)
	return total * inv, nil
}

// Loss implements Model.
func (m *NetModel) Loss(params tensor.Vector, batch []dataset.Sample) (float64, error) {
	if len(batch) == 0 {
		return 0, fmt.Errorf("model %s: empty batch", m.name)
	}
	var total float64
	gradOut := make([]float64, m.net.OutputSize())
	for _, s := range batch {
		out, err := m.net.Forward(params, s.X)
		if err != nil {
			return 0, fmt.Errorf("model %s: %w", m.name, err)
		}
		total += m.net.Loss().LossGrad(out, s.Label, gradOut)
	}
	return total / float64(len(batch)), nil
}

// Predict implements Model.
func (m *NetModel) Predict(params tensor.Vector, x tensor.Vector) (int, error) {
	return m.net.Predict(params, x)
}

// Accuracy evaluates classification accuracy of params over ds.
func Accuracy(m Model, params tensor.Vector, ds *dataset.Dataset) (float64, error) {
	if ds.Len() == 0 {
		return 0, dataset.ErrEmpty
	}
	correct := 0
	for _, s := range ds.Samples {
		pred, err := m.Predict(params, s.X)
		if err != nil {
			return 0, err
		}
		if pred == s.Label {
			correct++
		}
	}
	return float64(correct) / float64(ds.Len()), nil
}

// AccuracyParallel is Accuracy with the Predict calls fanned out over a
// goroutine pool of the given size (≤ 1 falls back to the serial loop).
// Every sample writes only its own hit slot and the reduction is an integer
// count, so the result is identical to Accuracy at any pool size.
func AccuracyParallel(m Model, params tensor.Vector, ds *dataset.Dataset, workers int) (float64, error) {
	if workers <= 1 {
		return Accuracy(m, params, ds)
	}
	if ds.Len() == 0 {
		return 0, dataset.ErrEmpty
	}
	hits := make([]bool, ds.Len())
	err := parallel.ForEach(ds.Len(), func(i int) error {
		s := ds.Samples[i]
		pred, err := m.Predict(params, s.X)
		if err != nil {
			return err
		}
		hits[i] = pred == s.Label
		return nil
	}, parallel.WithWorkers(workers))
	if err != nil {
		return 0, err
	}
	correct := 0
	for _, hit := range hits {
		if hit {
			correct++
		}
	}
	return float64(correct) / float64(ds.Len()), nil
}

func toShape3(sh dataset.Shape) nn.Shape3 {
	return nn.Shape3{C: sh.C, H: sh.H, W: sh.W}
}
