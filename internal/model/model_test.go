package model

import (
	"math"
	"testing"

	"hieradmo/internal/dataset"
	"hieradmo/internal/rng"
	"hieradmo/internal/tensor"
)

func smallShape() dataset.Shape { return dataset.Shape{C: 1, H: 6, W: 6} }

func genData(t *testing.T, cfg dataset.GenConfig, n int) (*dataset.Dataset, *dataset.Dataset) {
	t.Helper()
	g, err := dataset.NewGenerator(cfg, 11)
	if err != nil {
		t.Fatal(err)
	}
	train, test := g.TrainTest(n, n/2, 13)
	return train, test
}

func smallGenConfig() dataset.GenConfig {
	return dataset.GenConfig{
		Name:          "toy",
		Shape:         smallShape(),
		NumClasses:    4,
		TemplateScale: 1.0,
		NoiseStd:      0.5,
		SmoothPasses:  1,
		WarpStd:       0.1,
	}
}

func TestByName(t *testing.T) {
	sh := smallShape()
	for _, name := range []string{"linear", "logistic", "cnn", "cnn-gap", "vgg-mini", "resnet-mini"} {
		t.Run(name, func(t *testing.T) {
			m, err := ByName(name, sh, 4)
			if err != nil {
				t.Fatal(err)
			}
			if m.Dim() <= 0 {
				t.Errorf("Dim = %d", m.Dim())
			}
		})
	}
	if _, err := ByName("transformer", sh, 4); err == nil {
		t.Error("accepted unknown model name")
	}
}

func TestByNameAliases(t *testing.T) {
	sh := dataset.Shape{C: 3, H: 12, W: 12}
	for _, alias := range []string{"vgg", "vgg16", "resnet", "resnet18"} {
		if _, err := ByName(alias, sh, 10); err != nil {
			t.Errorf("alias %q: %v", alias, err)
		}
	}
}

func TestLossGradMatchesFiniteDifference(t *testing.T) {
	// Model-level gradient check over a real batch, for each model family.
	train, _ := genData(t, smallGenConfig(), 12)
	for _, name := range []string{"linear", "logistic", "cnn", "cnn-gap"} {
		t.Run(name, func(t *testing.T) {
			m, err := ByName(name, train.Shape, train.NumClasses)
			if err != nil {
				t.Fatal(err)
			}
			r := rng.New(3)
			params := m.Init(r)
			for i := range params {
				params[i] += 0.02 * r.Norm()
			}
			batch := train.Samples[:6]
			grad := tensor.NewVector(m.Dim())
			if _, err := m.LossGrad(params, batch, grad); err != nil {
				t.Fatal(err)
			}
			const h = 1e-5
			stride := 1
			if m.Dim() > 200 {
				stride = m.Dim() / 200
			}
			for i := 0; i < m.Dim(); i += stride {
				orig := params[i]
				params[i] = orig + h
				lp, err := m.Loss(params, batch)
				if err != nil {
					t.Fatal(err)
				}
				params[i] = orig - h
				lm, err := m.Loss(params, batch)
				if err != nil {
					t.Fatal(err)
				}
				params[i] = orig
				numeric := (lp - lm) / (2 * h)
				scale := math.Max(1, math.Abs(numeric))
				if math.Abs(numeric-grad[i])/scale > 1e-4 {
					t.Fatalf("param %d: analytic %v vs numeric %v", i, grad[i], numeric)
				}
			}
		})
	}
}

func TestEmptyBatchRejected(t *testing.T) {
	m, err := NewLogisticRegression(smallShape(), 4)
	if err != nil {
		t.Fatal(err)
	}
	params := m.Init(rng.New(1))
	grad := tensor.NewVector(m.Dim())
	if _, err := m.LossGrad(params, nil, grad); err == nil {
		t.Error("LossGrad accepted empty batch")
	}
	if _, err := m.Loss(params, nil); err == nil {
		t.Error("Loss accepted empty batch")
	}
}

func TestAccuracyEmptyDataset(t *testing.T) {
	m, err := NewLogisticRegression(smallShape(), 4)
	if err != nil {
		t.Fatal(err)
	}
	params := m.Init(rng.New(1))
	if _, err := Accuracy(m, params, &dataset.Dataset{}); err == nil {
		t.Error("Accuracy accepted empty dataset")
	}
}

func TestModelsTrainAboveChance(t *testing.T) {
	// Each model family, trained with plain SGD, must beat chance on the
	// separable synthetic task. This is the end-to-end sanity check that the
	// substrate can actually learn.
	train, test := genData(t, smallGenConfig(), 400)
	for _, name := range []string{"linear", "logistic", "cnn", "cnn-gap", "vgg-mini", "resnet-mini"} {
		t.Run(name, func(t *testing.T) {
			m, err := ByName(name, train.Shape, train.NumClasses)
			if err != nil {
				t.Fatal(err)
			}
			r := rng.New(17)
			params := m.Init(r)
			grad := tensor.NewVector(m.Dim())
			for step := 0; step < 250; step++ {
				batch, err := train.Batch(r, 16)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := m.LossGrad(params, batch, grad); err != nil {
					t.Fatal(err)
				}
				if err := params.AXPY(-0.05, grad); err != nil {
					t.Fatal(err)
				}
			}
			acc, err := Accuracy(m, params, test)
			if err != nil {
				t.Fatal(err)
			}
			if acc < 0.5 { // chance is 0.25 on 4 classes
				t.Errorf("accuracy %.3f, want >= 0.5", acc)
			}
			if !params.IsFinite() {
				t.Error("parameters diverged to non-finite values")
			}
		})
	}
}

func TestPaperModelsBuildOnPaperShapes(t *testing.T) {
	tests := []struct {
		name    string
		cfg     dataset.GenConfig
		model   string
		classes int
	}{
		{name: "linear-mnist", cfg: dataset.MNISTConfig(), model: "linear"},
		{name: "logistic-mnist", cfg: dataset.MNISTConfig(), model: "logistic"},
		{name: "cnn-mnist", cfg: dataset.MNISTConfig(), model: "cnn"},
		{name: "cnn-cifar", cfg: dataset.CIFAR10Config(), model: "cnn"},
		{name: "vgg-cifar", cfg: dataset.CIFAR10Config(), model: "vgg-mini"},
		{name: "resnet-imagenet", cfg: dataset.ImageNetConfig(), model: "resnet-mini"},
		{name: "cnn-har", cfg: dataset.HARConfig(), model: "cnn"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			m, err := ByName(tt.model, tt.cfg.Shape, tt.cfg.NumClasses)
			if err != nil {
				t.Fatal(err)
			}
			params := m.Init(rng.New(1))
			g, err := dataset.NewGenerator(tt.cfg, 1)
			if err != nil {
				t.Fatal(err)
			}
			ds := g.Generate(4, 2)
			grad := tensor.NewVector(m.Dim())
			if _, err := m.LossGrad(params, ds.Samples, grad); err != nil {
				t.Fatalf("LossGrad on %s: %v", tt.name, err)
			}
			if !grad.IsFinite() {
				t.Error("non-finite gradient")
			}
		})
	}
}

func TestDimMatchesNetwork(t *testing.T) {
	m, err := NewCNN(smallShape(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if m.Dim() != m.Network().Dim() {
		t.Errorf("Dim %d != network dim %d", m.Dim(), m.Network().Dim())
	}
	if m.Name() != "cnn" {
		t.Errorf("Name = %q", m.Name())
	}
}
