package model

import (
	"fmt"

	"hieradmo/internal/dataset"
	"hieradmo/internal/nn"
)

// NewLinearRegression builds the paper's linear-regression classifier: a
// single affine map trained with mean-squared error against one-hot labels;
// predictions are the argmax output (a convex problem).
func NewLinearRegression(sh dataset.Shape, classes int) (*NetModel, error) {
	net, err := nn.Sequential(nn.MSEOneHot{},
		nn.NewDense(sh.Size(), classes),
	)
	if err != nil {
		return nil, fmt.Errorf("linear regression: %w", err)
	}
	return NewZeroInitNetModel("linear", net), nil
}

// NewLogisticRegression builds multinomial logistic regression: one affine
// map trained with softmax cross-entropy (a convex problem).
func NewLogisticRegression(sh dataset.Shape, classes int) (*NetModel, error) {
	net, err := nn.Sequential(nn.SoftmaxCrossEntropy{},
		nn.NewDense(sh.Size(), classes),
	)
	if err != nil {
		return nil, fmt.Errorf("logistic regression: %w", err)
	}
	return NewZeroInitNetModel("logistic", net), nil
}

// NewCNN builds the classic two-conv-layer CNN used by the paper's MNIST,
// CIFAR-10, and UCI-HAR experiments: conv-relu-pool ×2 followed by a linear
// classifier.
func NewCNN(sh dataset.Shape, classes int) (*NetModel, error) {
	in := toShape3(sh)
	conv1 := nn.NewConv2D(in, 8, 3, 1)
	relu1 := nn.NewReLU(conv1.OutShape())
	pool1 := nn.NewMaxPool2D(relu1.OutShape())
	conv2 := nn.NewConv2D(pool1.OutShape(), 16, 3, 1)
	relu2 := nn.NewReLU(conv2.OutShape())
	pool2 := nn.NewMaxPool2D(relu2.OutShape())
	flat := nn.NewFlatten(pool2.OutShape())
	net, err := nn.Sequential(nn.SoftmaxCrossEntropy{},
		conv1, relu1, pool1,
		conv2, relu2, pool2,
		flat, nn.NewDense(pool2.OutShape().Size(), classes),
	)
	if err != nil {
		return nil, fmt.Errorf("cnn: %w", err)
	}
	return NewNetModel("cnn", net), nil
}

// NewVGGMini builds a laptop-scale VGG-style network (the VGG16 stand-in):
// two conv-conv-pool stages followed by a two-layer classifier head.
func NewVGGMini(sh dataset.Shape, classes int) (*NetModel, error) {
	in := toShape3(sh)
	conv1a := nn.NewConv2D(in, 8, 3, 1)
	relu1a := nn.NewReLU(conv1a.OutShape())
	conv1b := nn.NewConv2D(relu1a.OutShape(), 8, 3, 1)
	relu1b := nn.NewReLU(conv1b.OutShape())
	pool1 := nn.NewMaxPool2D(relu1b.OutShape())
	conv2a := nn.NewConv2D(pool1.OutShape(), 16, 3, 1)
	relu2a := nn.NewReLU(conv2a.OutShape())
	conv2b := nn.NewConv2D(relu2a.OutShape(), 16, 3, 1)
	relu2b := nn.NewReLU(conv2b.OutShape())
	pool2 := nn.NewMaxPool2D(relu2b.OutShape())
	flat := nn.NewFlatten(pool2.OutShape())
	hidden := 48
	net, err := nn.Sequential(nn.SoftmaxCrossEntropy{},
		conv1a, relu1a, conv1b, relu1b, pool1,
		conv2a, relu2a, conv2b, relu2b, pool2,
		flat,
		nn.NewDense(pool2.OutShape().Size(), hidden),
		nn.NewReLU(nn.Shape3{C: 1, H: 1, W: hidden}),
		nn.NewDense(hidden, classes),
	)
	if err != nil {
		return nil, fmt.Errorf("vgg-mini: %w", err)
	}
	return NewNetModel("vgg-mini", net), nil
}

// NewResNetMini builds a laptop-scale ResNet-style network (the ResNet18
// stand-in): a stem convolution, two residual basic blocks with a pool in
// between, and a linear classifier.
func NewResNetMini(sh dataset.Shape, classes int) (*NetModel, error) {
	in := toShape3(sh)
	stem := nn.NewConv2D(in, 8, 3, 1)
	reluS := nn.NewReLU(stem.OutShape())
	res1 := nn.NewResidual(reluS.OutShape())
	pool1 := nn.NewMaxPool2D(res1.OutShape())
	res2 := nn.NewResidual(pool1.OutShape())
	pool2 := nn.NewMaxPool2D(res2.OutShape())
	flat := nn.NewFlatten(pool2.OutShape())
	net, err := nn.Sequential(nn.SoftmaxCrossEntropy{},
		stem, reluS, res1, pool1, res2, pool2,
		flat, nn.NewDense(pool2.OutShape().Size(), classes),
	)
	if err != nil {
		return nil, fmt.Errorf("resnet-mini: %w", err)
	}
	return NewNetModel("resnet-mini", net), nil
}

// NewCNNGap builds the CNN variant with a global-average-pool classifier
// head instead of the flatten-dense head — the modern architecture choice,
// provided for the architecture ablation.
func NewCNNGap(sh dataset.Shape, classes int) (*NetModel, error) {
	in := toShape3(sh)
	conv1 := nn.NewConv2D(in, 8, 3, 1)
	relu1 := nn.NewReLU(conv1.OutShape())
	pool1 := nn.NewMaxPool2D(relu1.OutShape())
	conv2 := nn.NewConv2D(pool1.OutShape(), 16, 3, 1)
	relu2 := nn.NewReLU(conv2.OutShape())
	gap := nn.NewGlobalAvgPool(relu2.OutShape())
	net, err := nn.Sequential(nn.SoftmaxCrossEntropy{},
		conv1, relu1, pool1,
		conv2, relu2, gap,
		nn.NewDense(16, classes),
	)
	if err != nil {
		return nil, fmt.Errorf("cnn-gap: %w", err)
	}
	return NewNetModel("cnn-gap", net), nil
}

// ByName constructs a model by its report name: the paper's five models
// ("linear", "logistic", "cnn", "vgg-mini", "resnet-mini") plus the
// "cnn-gap" ablation variant.
func ByName(name string, sh dataset.Shape, classes int) (*NetModel, error) {
	switch name {
	case "linear":
		return NewLinearRegression(sh, classes)
	case "logistic":
		return NewLogisticRegression(sh, classes)
	case "cnn":
		return NewCNN(sh, classes)
	case "cnn-gap":
		return NewCNNGap(sh, classes)
	case "vgg-mini", "vgg", "vgg16":
		return NewVGGMini(sh, classes)
	case "resnet-mini", "resnet", "resnet18":
		return NewResNetMini(sh, classes)
	default:
		return nil, fmt.Errorf("model: unknown model %q", name)
	}
}
