package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestForEachRunsEveryIndex(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 8, 100} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			const n = 64
			hits := make([]atomic.Int32, n)
			err := ForEach(n, func(i int) error {
				hits[i].Add(1)
				return nil
			}, WithWorkers(workers))
			if err != nil {
				t.Fatal(err)
			}
			for i := range hits {
				if got := hits[i].Load(); got != 1 {
					t.Errorf("index %d ran %d times, want 1", i, got)
				}
			}
		})
	}
}

func TestForEachZeroAndNegativeN(t *testing.T) {
	called := false
	if err := ForEach(0, func(int) error { called = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if err := ForEach(-3, func(int) error { called = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Error("fn invoked for non-positive n")
	}
}

func TestForEachJoinsErrorsInIndexOrder(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	for _, workers := range []int{1, 4} {
		err := ForEach(8, func(i int) error {
			switch i {
			case 2:
				return errA
			case 6:
				return errB
			}
			return nil
		}, WithWorkers(workers))
		if !errors.Is(err, errA) || !errors.Is(err, errB) {
			t.Fatalf("workers=%d: err %v does not wrap both failures", workers, err)
		}
		// Index-ordered join: the message is deterministic.
		if want := "a\nb"; err.Error() != want {
			t.Errorf("workers=%d: err message %q, want %q", workers, err.Error(), want)
		}
	}
}

func TestForEachContinuesAfterError(t *testing.T) {
	var ran atomic.Int32
	err := ForEach(16, func(i int) error {
		ran.Add(1)
		if i == 0 {
			return errors.New("first index fails")
		}
		return nil
	}, WithWorkers(1))
	if err == nil {
		t.Fatal("error dropped")
	}
	if got := ran.Load(); got != 16 {
		t.Errorf("ran %d of 16 indices after failure", got)
	}
}

func TestForEachBoundsConcurrency(t *testing.T) {
	const limit = 3
	var inFlight, peak atomic.Int32
	err := ForEach(64, func(int) error {
		cur := inFlight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		runtime.Gosched()
		inFlight.Add(-1)
		return nil
	}, WithWorkers(limit))
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > limit {
		t.Errorf("observed %d concurrent invocations, limit %d", p, limit)
	}
}

func TestResolve(t *testing.T) {
	if got := Resolve(5); got != 5 {
		t.Errorf("Resolve(5) = %d", got)
	}
	if got := Resolve(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Resolve(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Resolve(-2); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Resolve(-2) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
}
