// Package parallel provides the bounded fork/join primitive behind every
// concurrent phase of the repository: the per-round worker training loops in
// internal/core and internal/baseline, the concurrent-Grad path through
// internal/nn's pooled workspaces, and the independent-run fan-out in
// internal/experiment's sweeps.
//
// The contract is deliberately narrow so callers stay deterministic: ForEach
// runs one function per index over a bounded goroutine pool and always joins
// every goroutine before returning. Scheduling order is unspecified, but
// because every index writes only its own state (and its own error slot),
// the observable result is independent of the pool size. Callers perform all
// cross-index reductions after ForEach returns, in fixed index order — that
// discipline, not this package, is what makes runs bit-identical at any
// worker count.
package parallel

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
)

// Options configures a ForEach invocation.
type Options struct {
	workers int
}

// Option customizes Options.
type Option func(*Options)

// WithWorkers bounds the goroutine pool to n concurrent workers. Values
// below 1 (including the default 0) select runtime.GOMAXPROCS(0).
func WithWorkers(n int) Option {
	return func(o *Options) { o.workers = n }
}

// Resolve returns the effective pool size: n when positive, otherwise
// runtime.GOMAXPROCS(0). It is exported so config layers (fl.Config.Workers,
// the -workers CLI flag) report the same default ForEach applies.
func Resolve(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// ForEach invokes fn(i) for every i in [0, n), at most WithWorkers(n) at a
// time, and returns after all invocations finish. Errors are collected into
// per-index slots and combined with errors.Join in index order, so the
// returned error is deterministic regardless of scheduling. A pool size of 1
// (or n == 1) degenerates to a sequential loop on the calling goroutine with
// identical semantics: every index still runs even after one fails.
//
// fn must confine its writes to index-owned state; ForEach provides the
// barrier (all goroutines joined) but no other synchronization.
func ForEach(n int, fn func(i int) error, opts ...Option) error {
	if n <= 0 {
		return nil
	}
	var o Options
	for _, opt := range opts {
		opt(&o)
	}
	workers := Resolve(o.workers)
	if workers > n {
		workers = n
	}

	if workers == 1 {
		var errs []error
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				errs = append(errs, err)
			}
		}
		return errors.Join(errs...)
	}

	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for g := 0; g < workers; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	// errors.Join drops nils, so joining the full slot slice in index order
	// yields the same error value a sequential loop would have produced.
	return errors.Join(errs...)
}
