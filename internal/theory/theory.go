// Package theory reproduces the analytical objects of the paper's
// convergence analysis (§IV and Appendices A–E): the constants A, B, I, J,
// U, V of Appendix A, the gap functions h(x, δℓ) of Theorem 1, s(τ) of
// Theorem 2, and j(τ, π, δℓ, δ) of Theorem 4, the convergence upper bound of
// Theorem 4, and the expected-γℓ comparison of Theorem 5.
//
// These are the quantities the paper's hyper-parameter discussion rests on
// ("larger τ and π increase the bound", "adaptive γℓ has a smaller expected
// value than fixed γℓ"); the package lets experiments and tests evaluate
// them numerically and verify the claimed monotonicities, and provides an
// empirical estimator for the gradient-divergence constants δ(i,ℓ), δℓ, δ
// of Assumption 3.
package theory

import (
	"errors"
	"fmt"
	"math"
)

// ErrParams wraps invalid analytical parameter combinations.
var ErrParams = errors.New("theory: invalid parameters")

// Params are the constants of the convergence analysis: learning rate η,
// worker momentum factor γ, edge momentum factor γℓ, smoothness β, and
// Lipschitz constant ρ.
type Params struct {
	Eta, Gamma, GammaEdge float64
	Beta, Rho             float64
}

// Validate checks the analysis preconditions of Theorem 4, condition (1):
// 0 < βη(γ+1) ≤ 1, 0 < γ < 1, 0 ≤ γℓ < 1 (γℓ = 0 is the no-edge-momentum
// degenerate case), β > 0, ρ > 0.
func (p Params) Validate() error {
	switch {
	case p.Eta <= 0:
		return fmt.Errorf("%w: eta %v", ErrParams, p.Eta)
	case p.Gamma <= 0 || p.Gamma >= 1:
		return fmt.Errorf("%w: gamma %v outside (0,1)", ErrParams, p.Gamma)
	case p.GammaEdge < 0 || p.GammaEdge >= 1:
		return fmt.Errorf("%w: gammaEdge %v outside [0,1)", ErrParams, p.GammaEdge)
	case p.Beta <= 0 || p.Rho <= 0:
		return fmt.Errorf("%w: beta %v rho %v must be positive", ErrParams, p.Beta, p.Rho)
	case p.Beta*p.Eta*(p.Gamma+1) > 1:
		return fmt.Errorf("%w: beta*eta*(gamma+1) = %v > 1 violates Theorem 4 condition (1)",
			ErrParams, p.Beta*p.Eta*(p.Gamma+1))
	}
	return nil
}

// Constants are the Appendix A quantities derived from Params.
type Constants struct {
	A, B, I, J, U, V float64
}

// Derive computes the Appendix A constants:
//
//	A, B = ((1+ηβ)(1+γ) ± √((1+ηβ)²(1+γ)² − 4γ(1+ηβ))) / 2γ
//	I    = (γA + A − 1) / ((A−B)(γA − 1))
//	J    = (γB + B − 1) / ((A−B)(1 − γB))
//	U    = (A − 1)/(A − B),  V = (1 − B)/(A − B)
func Derive(p Params) (Constants, error) {
	if err := p.Validate(); err != nil {
		return Constants{}, err
	}
	var (
		g    = p.Gamma
		ob   = 1 + p.Eta*p.Beta
		disc = ob*ob*(1+g)*(1+g) - 4*g*ob
	)
	if disc < 0 {
		return Constants{}, fmt.Errorf("%w: negative discriminant %v", ErrParams, disc)
	}
	sq := math.Sqrt(disc)
	c := Constants{
		A: (ob*(1+g) + sq) / (2 * g),
		B: (ob*(1+g) - sq) / (2 * g),
	}
	if c.A == c.B {
		return Constants{}, fmt.Errorf("%w: repeated root A = B = %v", ErrParams, c.A)
	}
	c.I = (g*c.A + c.A - 1) / ((c.A - c.B) * (g*c.A - 1))
	c.J = (g*c.B + c.B - 1) / ((c.A - c.B) * (1 - g*c.B))
	c.U = (c.A - 1) / (c.A - c.B)
	c.V = (1 - c.B) / (c.A - c.B)
	return c, nil
}

// H evaluates the Theorem 1 gap function h(x, δℓ): the bound on the
// distance between the aggregated real worker models and the edge virtual
// update after x local iterations inside an edge interval,
//
//	h(x, δℓ) = η·δℓ·( (I·(γA)^x + J·(γB)^x − 1)/(ηβ)
//	                   − (γ²(γ^x − 1))/(γ−1) − x ) / (γ−1)²  … per eq. (17).
//
// The implementation follows eq. (17) with the bracketed grouping
//
//	I(γA)^x + J(γB)^x − 1)/(ηβ) − γ²(γ^x −1)−(γ−1)x) / (γ−1)²
//
// evaluated term by term; h(0, δℓ) = 0 by construction.
func H(p Params, c Constants, x int, deltaEdge float64) float64 {
	if x <= 0 || deltaEdge == 0 {
		return 0
	}
	var (
		g   = p.Gamma
		fx  = float64(x)
		gAx = math.Pow(g*c.A, fx)
		gBx = math.Pow(g*c.B, fx)
		gx  = math.Pow(g, fx)
	)
	inner := (c.I*gAx+c.J*gBx-1)/(p.Eta*p.Beta) -
		(g*g*(gx-1)-(g-1)*fx)/((g-1)*(g-1))
	return p.Eta * deltaEdge * inner
}

// S evaluates the Theorem 2 bound s(τ) = γℓ·τ·η·ρ·(γμ + γ + 1) on the edge
// momentum displacement ‖x_{ℓ+} − x_{ℓ−}‖, with μ the momentum-to-gradient
// ratio bound of eq. (30).
func S(p Params, tau int, mu float64) float64 {
	return p.GammaEdge * float64(tau) * p.Eta * p.Rho * (p.Gamma*mu + p.Gamma + 1)
}

// J4 evaluates the Theorem 4 aggregate gap
//
//	j(τ, π, δℓ, δ) = h(τπ, δ) + (π+1)·Σℓ (Dℓ/D)(h(τ, δℓ) + s(τ)),
//
// with edgeWeights[ℓ] = Dℓ/D and deltas[ℓ] = δℓ.
func J4(p Params, c Constants, tau, pi int, edgeWeights, deltas []float64, delta, mu float64) (float64, error) {
	if len(edgeWeights) != len(deltas) {
		return 0, fmt.Errorf("%w: %d edge weights for %d deltas", ErrParams, len(edgeWeights), len(deltas))
	}
	sum := 0.0
	for l, w := range edgeWeights {
		sum += w * (H(p, c, tau, deltas[l]) + S(p, tau, mu))
	}
	return H(p, c, tau*pi, delta) + float64(pi+1)*sum, nil
}

// BoundInput collects everything Theorem 4's final bound needs beyond the
// analytical Params.
type BoundInput struct {
	Tau, Pi, T  int
	EdgeWeights []float64
	EdgeDeltas  []float64
	Delta       float64
	Mu          float64
	// Omega, Sigma, Epsilon are the ω, σ, ε constants of Appendix D.
	Omega, Sigma, Epsilon float64
}

// Alpha evaluates the Appendix D step constant α of eq. (37):
//
//	α = η(γ+1)(1 − βη(γ+1)/2) − βη²γ²μ²/2 − ηγμ(1 − βη(γ+1)).
func Alpha(p Params, mu float64) float64 {
	e, g, b := p.Eta, p.Gamma, p.Beta
	return e*(g+1)*(1-b*e*(g+1)/2) - b*e*e*g*g*mu*mu/2 - e*g*mu*(1-b*e*(g+1))
}

// Bound evaluates the Theorem 4 convergence upper bound
//
//	F(x^T) − F(x*) ≤ 1 / ( T·(ωασ² − ρ·j(τ,π,δℓ,δ)/(τπε²)) ),
//
// returning an error when condition (2.1) fails (the bound is then vacuous —
// exactly the regime the paper's τ/π discussion warns about).
func Bound(p Params, in BoundInput) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	if in.T <= 0 || in.Tau <= 0 || in.Pi <= 0 || in.T%(in.Tau*in.Pi) != 0 {
		return 0, fmt.Errorf("%w: T=%d tau=%d pi=%d", ErrParams, in.T, in.Tau, in.Pi)
	}
	if in.Epsilon <= 0 || in.Omega <= 0 || in.Sigma <= 0 {
		return 0, fmt.Errorf("%w: omega/sigma/epsilon must be positive", ErrParams)
	}
	c, err := Derive(p)
	if err != nil {
		return 0, err
	}
	j, err := J4(p, c, in.Tau, in.Pi, in.EdgeWeights, in.EdgeDeltas, in.Delta, in.Mu)
	if err != nil {
		return 0, err
	}
	alpha := Alpha(p, in.Mu)
	denomPerT := in.Omega*alpha*in.Sigma*in.Sigma -
		p.Rho*j/(float64(in.Tau)*float64(in.Pi)*in.Epsilon*in.Epsilon)
	if denomPerT <= 0 {
		return 0, fmt.Errorf("%w: condition (2.1) violated (ωασ² − ρj/(τπε²) = %v ≤ 0); "+
			"tau/pi too large for convergence guarantee", ErrParams, denomPerT)
	}
	return 1 / (float64(in.T) * denomPerT), nil
}

// ExpectedGammaAdaptive returns E(γℓ) under the Theorem 5 model: cos θ ~
// U(−1, 1) pushed through the eq. (7) clamp. Negative cosines map to 0
// (probability ½) and positive ones average ¼·…, giving E = 1/4 (the paper
// neglects the measure-zero effect of the 0.99 ceiling).
func ExpectedGammaAdaptive() float64 { return 0.25 }

// ExpectedGammaFixed returns E(γ̃ℓ) under Theorem 5's uniform prior on the
// fixed factor: γ̃ℓ ~ U(0,1) ⇒ E = 1/2.
func ExpectedGammaFixed() float64 { return 0.5 }

// VarGammaAdaptive returns D(γℓ) = 5/48 under the Theorem 5 model.
func VarGammaAdaptive() float64 { return 5.0 / 48.0 }

// VarGammaFixed returns D(γ̃ℓ) = 1/12 under the Theorem 5 model.
func VarGammaFixed() float64 { return 1.0 / 12.0 }
