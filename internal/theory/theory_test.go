package theory

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"hieradmo/internal/dataset"
	"hieradmo/internal/fl"
	"hieradmo/internal/model"
	"hieradmo/internal/rng"
)

func validParams() Params {
	return Params{Eta: 0.01, Gamma: 0.5, GammaEdge: 0.5, Beta: 10, Rho: 5}
}

func TestParamsValidate(t *testing.T) {
	if err := validParams().Validate(); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
	tests := []struct {
		name string
		mut  func(*Params)
	}{
		{name: "zero eta", mut: func(p *Params) { p.Eta = 0 }},
		{name: "gamma 1", mut: func(p *Params) { p.Gamma = 1 }},
		{name: "gamma 0", mut: func(p *Params) { p.Gamma = 0 }},
		{name: "gammaEdge 1", mut: func(p *Params) { p.GammaEdge = 1 }},
		{name: "negative beta", mut: func(p *Params) { p.Beta = -1 }},
		{name: "zero rho", mut: func(p *Params) { p.Rho = 0 }},
		{name: "condition 1", mut: func(p *Params) { p.Beta = 1000 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := validParams()
			tt.mut(&p)
			if err := p.Validate(); !errors.Is(err, ErrParams) {
				t.Errorf("err = %v, want ErrParams", err)
			}
		})
	}
}

func TestDeriveRootsSatisfyCharacteristicEquation(t *testing.T) {
	// A and B are the roots of γz² − (1+ηβ)(1+γ)z + (1+ηβ) = 0.
	p := validParams()
	c, err := Derive(p)
	if err != nil {
		t.Fatal(err)
	}
	ob := 1 + p.Eta*p.Beta
	for _, z := range []float64{c.A, c.B} {
		res := p.Gamma*z*z - ob*(1+p.Gamma)*z + ob
		if math.Abs(res) > 1e-9 {
			t.Errorf("root %v residual %v", z, res)
		}
	}
	if c.A <= c.B {
		t.Errorf("A %v should exceed B %v", c.A, c.B)
	}
	// U + V = 1 by construction.
	if math.Abs(c.U+c.V-1) > 1e-12 {
		t.Errorf("U+V = %v, want 1", c.U+c.V)
	}
}

func TestHZeroAtOrigin(t *testing.T) {
	p := validParams()
	c, err := Derive(p)
	if err != nil {
		t.Fatal(err)
	}
	if got := H(p, c, 0, 1.0); got != 0 {
		t.Errorf("h(0) = %v, want 0", got)
	}
	if got := H(p, c, 5, 0); got != 0 {
		t.Errorf("h(5, δ=0) = %v, want 0", got)
	}
}

func TestHNonNegativeAndIncreasing(t *testing.T) {
	// Paper eq. (39): h(x) ≥ 0 and increases with x.
	p := validParams()
	c, err := Derive(p)
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for x := 1; x <= 64; x *= 2 {
		h := H(p, c, x, 0.5)
		if h < prev {
			t.Errorf("h(%d) = %v < h(prev) = %v (not increasing)", x, h, prev)
		}
		if h < 0 {
			t.Errorf("h(%d) = %v < 0", x, h)
		}
		prev = h
	}
}

func TestHIncreasesWithDelta(t *testing.T) {
	p := validParams()
	c, err := Derive(p)
	if err != nil {
		t.Fatal(err)
	}
	if H(p, c, 10, 1.0) <= H(p, c, 10, 0.5) {
		t.Error("h should increase with δ")
	}
}

func TestSIncreasesWithTau(t *testing.T) {
	// Paper: s(τ) increases with τ; and s scales with γℓ (Theorem 5 uses
	// smaller E(γℓ) ⇒ smaller s ⇒ tighter bound).
	p := validParams()
	if S(p, 20, 1) <= S(p, 10, 1) {
		t.Error("s should increase with tau")
	}
	small, big := p, p
	small.GammaEdge = 0.25
	big.GammaEdge = 0.5
	if S(small, 10, 1) >= S(big, 10, 1) {
		t.Error("s should increase with gammaEdge")
	}
}

func TestJ4IncreasesWithTauAndPi(t *testing.T) {
	// Paper: j(τ, π) increases with τ and with π (drives Fig. 2(a)/(b)).
	p := validParams()
	c, err := Derive(p)
	if err != nil {
		t.Fatal(err)
	}
	w := []float64{0.5, 0.5}
	d := []float64{0.4, 0.6}
	j1, err := J4(p, c, 5, 2, w, d, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := J4(p, c, 10, 2, w, d, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	j3, err := J4(p, c, 5, 4, w, d, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if j2 <= j1 {
		t.Errorf("j(10,2)=%v should exceed j(5,2)=%v", j2, j1)
	}
	if j3 <= j1 {
		t.Errorf("j(5,4)=%v should exceed j(5,2)=%v", j3, j1)
	}
	if _, err := J4(p, c, 5, 2, w, d[:1], 0.5, 1); !errors.Is(err, ErrParams) {
		t.Errorf("mismatched weights err = %v", err)
	}
}

func TestAlphaPositiveInValidRegime(t *testing.T) {
	// Condition (2.1) needs α > 0; with small μ it must hold.
	p := validParams()
	if a := Alpha(p, 0.1); a <= 0 {
		t.Errorf("alpha = %v, want > 0", a)
	}
}

func TestBoundDecreasesWithT(t *testing.T) {
	// Theorem 4: the bound is ∝ 1/T.
	p := validParams()
	p.Rho = 1
	in := BoundInput{
		Tau: 5, Pi: 2, T: 100,
		EdgeWeights: []float64{0.5, 0.5},
		EdgeDeltas:  []float64{0.01, 0.01},
		Delta:       0.01,
		Mu:          0.1,
		Omega:       10, Sigma: 2, Epsilon: 1,
	}
	b1, err := Bound(p, in)
	if err != nil {
		t.Fatal(err)
	}
	in.T = 200
	b2, err := Bound(p, in)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b1/b2-2) > 1e-9 {
		t.Errorf("bound ratio %v, want exactly 2 (O(1/T))", b1/b2)
	}
}

func TestBoundIncreasesWithTauPi(t *testing.T) {
	// Theorem 4 discussion: larger τ (and π) increase the bound.
	p := validParams()
	p.Rho = 1
	base := BoundInput{
		Tau: 5, Pi: 2, T: 400,
		EdgeWeights: []float64{0.5, 0.5},
		EdgeDeltas:  []float64{0.01, 0.01},
		Delta:       0.01,
		Mu:          0.1,
		Omega:       10, Sigma: 2, Epsilon: 1,
	}
	b1, err := Bound(p, base)
	if err != nil {
		t.Fatal(err)
	}
	bigger := base
	bigger.Tau = 10
	b2, err := Bound(p, bigger)
	if err != nil {
		t.Fatal(err)
	}
	if b2 <= b1 {
		t.Errorf("bound(tau=10)=%v should exceed bound(tau=5)=%v", b2, b1)
	}
}

func TestBoundTighterWithSmallerGammaEdge(t *testing.T) {
	// Theorem 5's mechanism: smaller expected γℓ ⇒ smaller s(τ) ⇒ smaller j
	// ⇒ tighter bound. Adaptive E(γℓ)=1/4 < fixed E(γ̃ℓ)=1/2.
	adaptive, fixed := validParams(), validParams()
	adaptive.Rho, fixed.Rho = 1, 1
	adaptive.GammaEdge = ExpectedGammaAdaptive()
	fixed.GammaEdge = ExpectedGammaFixed()
	in := BoundInput{
		Tau: 5, Pi: 2, T: 400,
		EdgeWeights: []float64{0.5, 0.5},
		EdgeDeltas:  []float64{0.01, 0.01},
		Delta:       0.01,
		Mu:          0.1,
		Omega:       10, Sigma: 2, Epsilon: 1,
	}
	ba, err := Bound(adaptive, in)
	if err != nil {
		t.Fatal(err)
	}
	bf, err := Bound(fixed, in)
	if err != nil {
		t.Fatal(err)
	}
	if ba >= bf {
		t.Errorf("adaptive bound %v should be tighter than fixed %v (Theorem 5)", ba, bf)
	}
}

func TestBoundConditionViolation(t *testing.T) {
	// Gigantic τ must trip condition (2.1) rather than return a vacuous
	// number — the regime the paper warns about.
	p := validParams()
	in := BoundInput{
		Tau: 5000, Pi: 2, T: 10000,
		EdgeWeights: []float64{1},
		EdgeDeltas:  []float64{1},
		Delta:       1,
		Mu:          0.1,
		Omega:       1, Sigma: 1, Epsilon: 0.1,
	}
	if _, err := Bound(p, in); !errors.Is(err, ErrParams) {
		t.Errorf("err = %v, want ErrParams for condition (2.1)", err)
	}
}

func TestBoundInputValidation(t *testing.T) {
	p := validParams()
	in := BoundInput{
		Tau: 5, Pi: 2, T: 99, // not a multiple
		EdgeWeights: []float64{1}, EdgeDeltas: []float64{0.1},
		Delta: 0.1, Mu: 0.1, Omega: 1, Sigma: 1, Epsilon: 1,
	}
	if _, err := Bound(p, in); !errors.Is(err, ErrParams) {
		t.Errorf("non-multiple T err = %v", err)
	}
	in.T = 100
	in.Epsilon = 0
	if _, err := Bound(p, in); !errors.Is(err, ErrParams) {
		t.Errorf("zero epsilon err = %v", err)
	}
}

func TestTheorem5Moments(t *testing.T) {
	// Verify the closed forms against Monte-Carlo under the Theorem 5 model.
	r := rng.New(99)
	const n = 400000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		cos := 2*r.Float64() - 1 // U(-1,1)
		g := cos
		if g < 0 {
			g = 0
		} else if g > 0.99 {
			g = 0.99
		}
		sum += g
		sumSq += g * g
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-ExpectedGammaAdaptive()) > 0.01 {
		t.Errorf("MC mean %v vs closed form %v", mean, ExpectedGammaAdaptive())
	}
	if math.Abs(variance-VarGammaAdaptive()) > 0.01 {
		t.Errorf("MC variance %v vs closed form %v", variance, VarGammaAdaptive())
	}
	if ExpectedGammaAdaptive() >= ExpectedGammaFixed() {
		t.Error("Theorem 5 expectation ordering violated")
	}
	if VarGammaFixed() != 1.0/12.0 {
		t.Error("fixed-γℓ variance wrong")
	}
}

func TestEstimateDivergence(t *testing.T) {
	// Non-IID partitioning must produce strictly larger measured divergence
	// than IID partitioning of the same data — Assumption 3 made tangible.
	genCfg := dataset.GenConfig{
		Name:          "toy",
		Shape:         dataset.Shape{C: 1, H: 5, W: 5},
		NumClasses:    4,
		TemplateScale: 1.0,
		NoiseStd:      0.5,
		SmoothPasses:  1,
	}
	g, err := dataset.NewGenerator(genCfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	train, test := g.TrainTest(400, 80, 5)
	m, err := model.NewLogisticRegression(genCfg.Shape, genCfg.NumClasses)
	if err != nil {
		t.Fatal(err)
	}
	build := func(classesPerWorker int) *fl.Config {
		var (
			shards []*dataset.Dataset
			perr   error
		)
		if classesPerWorker > 0 {
			shards, perr = dataset.PartitionClasses(train, 4, classesPerWorker, 7)
		} else {
			shards, perr = dataset.PartitionIID(train, 4, 7)
		}
		if perr != nil {
			t.Fatal(perr)
		}
		hier, herr := dataset.Hierarchy(shards, []int{2, 2})
		if herr != nil {
			t.Fatal(herr)
		}
		return &fl.Config{
			Model: m, Edges: hier, Test: test,
			Eta: 0.05, Gamma: 0.5, GammaEdge: 0.5,
			Tau: 2, Pi: 2, T: 8, BatchSize: 8, Seed: 5,
		}
	}
	params := m.Init(rng.New(1))

	iid, err := EstimateDivergence(build(0), params)
	if err != nil {
		t.Fatal(err)
	}
	nonIID, err := EstimateDivergence(build(1), params)
	if err != nil {
		t.Fatal(err)
	}
	if nonIID.Global <= iid.Global {
		t.Errorf("non-IID δ = %v should exceed IID δ = %v", nonIID.Global, iid.Global)
	}
	if len(iid.PerEdge) != 2 || len(iid.PerWorker[0]) != 2 {
		t.Error("divergence shape wrong")
	}
	for l := range iid.PerWorker {
		for i, d := range iid.PerWorker[l] {
			if d < 0 {
				t.Errorf("negative divergence at {%d,%d}", i, l)
			}
		}
	}
}

func TestEdgeWeightsOf(t *testing.T) {
	genCfg := dataset.GenConfig{
		Name:          "toy",
		Shape:         dataset.Shape{C: 1, H: 4, W: 4},
		NumClasses:    3,
		TemplateScale: 1.0,
		NoiseStd:      0.5,
	}
	g, err := dataset.NewGenerator(genCfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	train, test := g.TrainTest(120, 40, 5)
	shards, err := dataset.PartitionIID(train, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	hier, err := dataset.Hierarchy(shards, []int{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	m, err := model.NewLogisticRegression(genCfg.Shape, genCfg.NumClasses)
	if err != nil {
		t.Fatal(err)
	}
	cfg := &fl.Config{
		Model: m, Edges: hier, Test: test,
		Eta: 0.05, Gamma: 0.5, GammaEdge: 0.5,
		Tau: 2, Pi: 2, T: 8, BatchSize: 8, Seed: 5,
	}
	w, err := EdgeWeightsOf(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(w) != 2 || math.Abs(w[0]+w[1]-1) > 1e-12 {
		t.Errorf("edge weights %v", w)
	}
}

func TestDerivePropertyValidInputs(t *testing.T) {
	// For any valid (η, γ, β) the discriminant is non-negative:
	// (1+ηβ)²(1+γ)² − 4γ(1+ηβ) = (1+ηβ)[(1+ηβ)(1+γ)² − 4γ] and
	// (1+γ)² ≥ 4γ always. Derive must therefore succeed on all valid params.
	f := func(etaRaw, gammaRaw, betaRaw uint16) bool {
		p := Params{
			Eta:   0.0001 + float64(etaRaw%1000)/100000.0,
			Gamma: 0.01 + 0.98*float64(gammaRaw%100)/100.0,
			Beta:  0.1 + float64(betaRaw%100)/10.0,
			Rho:   1, GammaEdge: 0.5,
		}
		if p.Validate() != nil {
			return true // out of the theorem's regime; nothing to check
		}
		_, err := Derive(p)
		return err == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
