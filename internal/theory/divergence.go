package theory

import (
	"fmt"

	"hieradmo/internal/fl"
	"hieradmo/internal/tensor"
)

// Divergence holds empirical estimates of the Assumption 3 gradient-
// divergence constants at a specific parameter point: δ(i,ℓ) per worker,
// their data-weighted edge averages δℓ, and the global weighted average δ.
type Divergence struct {
	PerWorker [][]float64
	PerEdge   []float64
	Global    float64
}

// EstimateDivergence computes full-shard gradients for every worker at
// params and measures ‖∇F(i,ℓ) − ∇Fℓ‖ per worker, then aggregates per the
// paper's definitions (δℓ = Σᵢ D(i,ℓ)/Dℓ · δ(i,ℓ), δ = Σℓ Dℓ/D · δℓ).
// Assumption 3's constants are suprema over x; evaluating at the shared
// initialization (or any training iterate) yields the standard empirical
// proxy used to compare heterogeneity levels across partitionings.
func EstimateDivergence(cfg *fl.Config, params tensor.Vector) (*Divergence, error) {
	hn, err := fl.NewHarness(cfg)
	if err != nil {
		return nil, err
	}
	dim := len(params)
	div := &Divergence{
		PerWorker: make([][]float64, cfg.NumEdges()),
		PerEdge:   make([]float64, cfg.NumEdges()),
	}
	for l, edge := range cfg.Edges {
		grads := make([]tensor.Vector, len(edge))
		for i, shard := range edge {
			grads[i] = tensor.NewVector(dim)
			if _, err := cfg.Model.LossGrad(params, shard.Samples, grads[i]); err != nil {
				return nil, fmt.Errorf("theory: worker {%d,%d} full gradient: %w", i, l, err)
			}
		}
		edgeGrad := tensor.NewVector(dim)
		if err := hn.EdgeAverage(edgeGrad, l, grads); err != nil {
			return nil, err
		}
		div.PerWorker[l] = make([]float64, len(edge))
		for i, g := range grads {
			d, err := tensor.Dist(g, edgeGrad)
			if err != nil {
				return nil, err
			}
			div.PerWorker[l][i] = d
			div.PerEdge[l] += hn.WorkerWeights[l][i] * d
		}
		div.Global += hn.EdgeWeights[l] * div.PerEdge[l]
	}
	return div, nil
}

// EdgeWeightsOf exposes the Dℓ/D weights of a config for use with J4/Bound.
func EdgeWeightsOf(cfg *fl.Config) ([]float64, error) {
	hn, err := fl.NewHarness(cfg)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(hn.EdgeWeights))
	copy(out, hn.EdgeWeights)
	return out, nil
}
