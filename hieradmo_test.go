package hieradmo

import (
	"strings"
	"testing"
)

func tinyScale() Scale {
	s := BenchScale()
	s.TrainSamples = 300
	s.TestSamples = 100
	s.TConvex = 40
	s.TNonConvex = 40
	s.BatchSize = 4
	s.EvalEvery = 20
	s.EvalSamples = 60
	return s
}

func TestFacadeBuildAndRun(t *testing.T) {
	cfg, err := BuildConfig(Workload{Dataset: "mnist", Model: "logistic"}, tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	res, err := New().Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != "HierAdMo" {
		t.Errorf("algorithm = %q", res.Algorithm)
	}
	if res.FinalAcc <= 0 || res.FinalAcc > 1 {
		t.Errorf("FinalAcc = %v", res.FinalAcc)
	}
}

func TestFacadeReducedAndOptions(t *testing.T) {
	cfg, err := BuildConfig(Workload{Dataset: "mnist", Model: "logistic"}, tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	alg := NewReduced(WithAdaptSignal(SignalVelocity), WithClampCeiling(0.9))
	res, err := alg.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != "HierAdMo-R" {
		t.Errorf("algorithm = %q", res.Algorithm)
	}
}

func TestFacadeAlgorithms(t *testing.T) {
	algos := Algorithms()
	if len(algos) != 11 {
		t.Fatalf("%d algorithms, want 11", len(algos))
	}
}

func TestFacadeExperimentIDs(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) < 14 {
		t.Fatalf("%d experiment ids", len(ids))
	}
	for _, id := range ids {
		if id == "" {
			t.Error("empty experiment id")
		}
	}
}

func TestRunExperimentUnknown(t *testing.T) {
	if _, err := RunExperiment("nope", tinyScale()); err == nil {
		t.Error("accepted unknown experiment id")
	} else if !strings.Contains(err.Error(), "nope") {
		t.Errorf("error %v does not name the bad id", err)
	}
}

func TestRunExperimentSmall(t *testing.T) {
	tbl, err := RunExperiment("fig2i", tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tbl.Render(), "adaptive") {
		t.Error("fig2i table missing adaptive row")
	}
}

func TestScalePresets(t *testing.T) {
	if err := BenchScale().Validate(); err != nil {
		t.Error(err)
	}
	if err := DefaultScale().Validate(); err != nil {
		t.Error(err)
	}
	if BenchScale().TrainSamples >= DefaultScale().TrainSamples {
		t.Error("bench scale should be smaller than default scale")
	}
}

func TestFacadeExtensionOptions(t *testing.T) {
	cfg, err := BuildConfig(Workload{Dataset: "mnist", Model: "logistic"}, tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	alg := New(WithParticipation(0.5), WithUplinkQuantization(8))
	res, err := alg.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalAcc <= 0 {
		t.Errorf("FinalAcc = %v", res.FinalAcc)
	}
}
