package hieradmo

import (
	"io"

	"hieradmo/internal/cluster"
	"hieradmo/internal/fl"
	"hieradmo/internal/persist"
	"hieradmo/internal/tensor"
	"hieradmo/internal/transport"
)

// Distributed-execution types, re-exported from the cluster runtime.
type (
	// ClusterOptions tunes a distributed run (adaptation on/off, signal,
	// clamp, receive timeout, quorum fraction, straggler deadline).
	ClusterOptions = cluster.Options
	// ClusterNetwork is the transport factory a distributed run executes
	// over.
	ClusterNetwork = cluster.Network
	// FaultPlan is a deterministic seeded fault schedule for a faulty
	// network: per-link drop rates, message delays, crash-at-round.
	FaultPlan = transport.FaultPlan
	// NetworkLink identifies one directed sender→receiver pair in a
	// FaultPlan.
	NetworkLink = transport.Link
	// FaultReport describes the faults a degraded distributed run survived
	// (carried on Result.FaultReport).
	FaultReport = fl.FaultReport
)

// NewMemoryNetwork returns the in-process message hub (fast, used for
// single-machine runs and tests).
func NewMemoryNetwork() ClusterNetwork { return transport.NewMemoryNetwork() }

// NewTCPNetwork returns the loopback-TCP transport: every node gets its own
// socket and messages are gob-encoded frames.
func NewTCPNetwork() ClusterNetwork { return transport.NewTCPNetwork() }

// NewFaultyNetwork composes a deterministic seeded fault schedule (message
// drops, delays, node crashes) over another network, for chaos testing the
// distributed runtime over both the in-memory hub and real sockets. Pair it
// with ClusterOptions.MinQuorum < 1 so the protocol degrades gracefully
// instead of failing stop.
func NewFaultyNetwork(inner ClusterNetwork, plan FaultPlan) ClusterNetwork {
	return transport.NewFaultyNetwork(inner, plan)
}

// RunDistributed executes HierAdMo as a real message-passing protocol (one
// node per worker, edge, and cloud) over the given network. With identical
// Config, the result is bit-identical to New().Run(cfg): the distributed
// protocol performs the same floating-point operations in the same order.
func RunDistributed(cfg *Config, net ClusterNetwork, opts ClusterOptions) (*Result, error) {
	return cluster.Run(cfg, net, opts)
}

// SaveResult writes a run result to path as JSON.
func SaveResult(path string, res *Result) error { return persist.SaveResult(path, res) }

// LoadResult reads a JSON run result from path.
func LoadResult(path string) (*Result, error) { return persist.LoadResult(path) }

// WriteCurveCSV writes the accuracy/loss curves of one or more results as
// CSV (long format with an algorithm column) for external plotting.
func WriteCurveCSV(w io.Writer, results ...*Result) error {
	return persist.WriteCurveCSV(w, results...)
}

// SaveCheckpoint writes model parameters as a compact binary checkpoint.
func SaveCheckpoint(path string, params []float64) error {
	return persist.SaveCheckpoint(path, tensor.Vector(params))
}

// LoadCheckpoint reads parameters written by SaveCheckpoint.
func LoadCheckpoint(path string) ([]float64, error) {
	v, err := persist.LoadCheckpoint(path)
	return []float64(v), err
}
